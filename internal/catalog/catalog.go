// Package catalog is the multi-query serving layer: a prepared-statement
// catalog that owns a set of registered queries, compiles each through the
// sqlparse → query → engine pipeline, and fans one shared ingest stream out
// to every query's sharded executor service.
//
// The lifecycle mirrors the Parse → Prepare → Execute phases of a classic
// query service:
//
//   - Register parses and plans the SQL (Parse/Prepare), assigns a QueryID,
//     and either joins an existing executor set or boots a fresh one;
//   - ApplyBatch executes: the batch is logged ONCE to the catalog's shared
//     WAL — one record per batch regardless of how many queries are
//     registered — then applied to every distinct executor set;
//   - per-query reads (Result, ResultGrouped, Subscribe, Stats) are served
//     by the query's own serve.Service, so every property of the
//     single-query serving layer (sharding, snapshots, coalescing push
//     subscriptions) holds per registered query.
//
// Index sharing is organized around the engine's StateSet/ProbePlan split: an
// executor set is a *state set* — the maintained base-relation state and its
// RPAI/aggregate indexes, owned by ingest — and each registration reads it
// through a *probe plan* (engine.ProbeSpec): an outer aggregate kind, a
// threshold constant, and an optional residual partition-column conjunct.
// Registrations whose probe-eligible queries resolve to the same state
// identity (engine.StateKey) share one set, whether they differ in threshold
// constant, outer aggregate (SUM vs COUNT(*) vs AVG), or a residual filter
// conjunct (engine.SplitResidual); COUNT(*) variants additionally attach
// across aggregate terms, because the count index is term-independent. Each
// member's plan becomes a probe lane (serve.SetProbes) evaluated at read
// time against the shared indexes, bit-identical to a dedicated service.
//
// Sharing is retroactive: a variant registered after the set has ingested
// events joins anyway and inherits the family's history — on a durable
// catalog the join is committed by forking the set's state as a checkpoint
// snapshot (so recovery restores the joined set from the fork instead of
// replaying the family's earlier records). Explain reports the state/probe
// split, both kinds of sharing, and the predicate-structure signature that
// makes family sharing visible.
package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// QueryID names one registered query for its lifetime. IDs are never reused,
// so a stale ID fails loudly instead of silently reading another query.
type QueryID uint64

// ErrUnknownQuery is returned for a QueryID that is not (or no longer)
// registered.
var ErrUnknownQuery = errors.New("catalog: unknown query id")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("catalog: closed")

// Options configures a catalog. PartitionBy applies to every registered
// query (the catalog serves one logical relation, so grouping keys are
// shared); Shards/QueueLen/BatchSize parameterize each query's executor
// service exactly as serve.Options does.
type Options struct {
	PartitionBy []string
	Shards      int
	QueueLen    int
	BatchSize   int
	// Dir, when set, makes the catalog durable: registrations persist in a
	// CATALOG manifest, every applied batch is logged once to a shared WAL,
	// and Recover rebuilds the full catalog after a crash.
	Dir string
}

// registration is one registered query: its ID, the SQL text as submitted,
// and the executor set serving it. shared marks a probe-eligible query (its
// reads go through spec, its probe plan against the set's shared state);
// a non-shared registration reads the set's base result directly and shares
// only with exact canonical duplicates.
type registration struct {
	id     QueryID
	sql    string // original text, echoed in List/Explain
	set    *execSet
	plan   engine.Plan
	canon  string
	shared bool
	spec   engine.ProbeSpec
}

// execSet is one state set: an executor service owning maintained relation
// state, plus the registrations probing it.
//
//   - stateKey/baseKey are the set's sharing identities (engine.StateKey):
//     stateKey admits any aggregate/threshold/residual variant over the same
//     maintained state, baseKey additionally admits COUNT(*) variants across
//     aggregate terms (empty when the state keeps no count side).
//   - baseSQL is the founding query's SQL and q the query the executors
//     actually run — the founder's query, except that AVG founders and
//     COUNT founders without a count-side index run the SUM form (their own
//     aggregate is served as a probe lane; see deriveState).
//   - baseSpec is the probe plan equivalent to the base executor's Result;
//     while every member's spec equals it, no lanes are installed and reads
//     go through Result directly (fanOn false).
//   - founded is the catalog's lifetime batch count when the set was
//     created (the member history epoch Explain reports as StateSince);
//     since is a current-generation WAL record index: the set's on-disk
//     starting state (snapshot or empty) is current through it, and
//     recovery replays records [since, records) into the set. A
//     retroactive join advances since by forking the live state into a
//     snapshot at snapDir (taken at record index snapAt).
type execSet struct {
	setID    uint64
	canon    string
	baseSQL  string
	q        *query.Query
	stateKey string
	baseKey  string
	baseSpec engine.ProbeSpec
	svc      *serve.Service[engine.Event]
	refs     map[QueryID]struct{}
	since    uint64
	founded  uint64
	lanes    map[engine.ProbeSpec]int
	fanOn    bool
	snapDir  string
	snapAt   uint64
	rejected atomic.Uint64
}

// Service is the catalog. All public methods are safe for concurrent use.
type Service struct {
	opt Options

	// mu guards the registration tables. Ingest holds it for read, Register/
	// Unregister/Checkpoint for write, so a batch never interleaves with a
	// registration change (the alignment that keeps `since` exact).
	mu       sync.RWMutex
	regs     map[QueryID]*registration
	sets     map[string]*execSet // canonical SQL -> newest set serving that form
	states   map[string]*execSet // engine.StateKey -> newest shared state set
	baseKeys map[string]*execSet // masked StateKey -> newest count-attachable set
	nextID   QueryID
	nextSet  uint64
	closed   bool

	// ingestMu serializes ApplyBatch so the WAL record order equals the
	// per-shard application order — the invariant recovery replay relies on.
	ingestMu sync.Mutex
	records  uint64 // WAL records written this generation (== batches applied)
	applied  uint64 // lifetime batches applied, never reset — founding epochs

	dur *durableState // nil for in-memory catalogs
}

// New builds a catalog. With Options.Dir set it becomes durable: an existing
// catalog directory is rejected (use Recover for that); otherwise the
// manifest and WAL for generation 1 are created before New returns.
func New(opt Options) (*Service, error) {
	if len(opt.PartitionBy) == 0 {
		return nil, errors.New("catalog: Options.PartitionBy must name at least one column")
	}
	s := &Service{
		opt:      opt,
		regs:     make(map[QueryID]*registration),
		sets:     make(map[string]*execSet),
		states:   make(map[string]*execSet),
		baseKeys: make(map[string]*execSet),
		nextID:   1,
		nextSet:  1,
	}
	if opt.Dir != "" {
		if err := s.initDurable(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// serveOptions are the per-set service options: never durable on their own —
// the catalog's shared WAL is the only log.
func (s *Service) serveOptions() serve.Options {
	return serve.Options{Shards: s.opt.Shards, QueueLen: s.opt.QueueLen, BatchSize: s.opt.BatchSize}
}

// deriveSpec computes a query's probe plan: directly (StateKey-eligible), or
// after splitting off a residual partition-column conjunct.
func deriveSpec(q *query.Query, partitionBy []string) (engine.ProbeSpec, bool) {
	if _, _, sp, ok := engine.StateKey(q); ok {
		return sp, true
	}
	if _, sp, ok := engine.SplitResidual(q, partitionBy); ok {
		return sp, true
	}
	return engine.ProbeSpec{}, false
}

// deriveState resolves a founder query's sharing identity and the query its
// state set's executors run. Probe-ineligible queries found private sets that
// run the query verbatim (exec == q, empty keys). For probe-eligible ones the
// keys come from the shareable base (the query minus any residual conjunct),
// and exec is the founder's own query except when its outer aggregate cannot
// anchor the base executor:
//
//   - AVG is not sum-decomposable across partitions (serve rejects it), and
//   - COUNT on the count-free aggindex shape (baseKey == "") plans onto an
//     executor without probe support;
//
// both run the SUM form instead — exact for COUNT, whose term there is the
// constant 1 — and the founder reads its own aggregate as a probe lane.
func deriveState(q *query.Query, partitionBy []string) (exec *query.Query, stateKey, baseKey string, spec engine.ProbeSpec, shared bool) {
	stateKey, baseKey, spec, shared = engine.StateKey(q)
	if !shared {
		if b, sp, ok := engine.SplitResidual(q, partitionBy); ok {
			spec, shared = sp, true
			stateKey, baseKey, _, _ = engine.StateKey(b)
		}
	}
	if !shared {
		return q, "", "", engine.ProbeSpec{}, false
	}
	exec = q
	if q.Outer == query.Avg || (q.Outer == query.Count && baseKey == "") {
		cp := *q
		cp.Outer = query.Sum
		exec = &cp
	}
	return exec, stateKey, baseKey, spec, true
}

// Register parses, plans, and activates one query, returning its ID and
// EXPLAIN output. A malformed or unsupported query fails with the parser's
// positioned error or the planner's rejection; nothing is registered.
//
// Set resolution, most to least specific: an exact canonical match joins its
// set outright; a probe-eligible query joins the newest set with the same
// state identity; a COUNT(*) variant additionally joins the newest set whose
// masked identity matches (the count index does not depend on the aggregate
// term). Joining is retroactive — the set's ingest history is the member's
// history (a late variant is the family's variant, not a fresh query) — and
// on a durable catalog a late join first forks the set's live state into a
// checkpoint snapshot, so recovery restores the member's set without
// replaying the family's earlier WAL records. Only when nothing matches is a
// fresh set founded.
func (s *Service) Register(sql string) (QueryID, Explain, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, Explain{}, err
	}
	plan, err := engine.Describe(q)
	if err != nil {
		return 0, Explain{}, err
	}
	canon := q.String()
	exec, stateKey, baseKey, spec, shared := deriveState(q, s.opt.PartitionBy)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, Explain{}, ErrClosed
	}
	id := s.nextID
	s.nextID++

	set := s.sets[canon]
	if set == nil && shared {
		set = s.states[stateKey]
		if set == nil && spec.Kind == query.Count && baseKey != "" {
			set = s.baseKeys[baseKey]
		}
	}
	created := false
	joinedFork := false
	var oldSince uint64
	if set == nil {
		svc, err := serve.ForQuery(exec, s.opt.PartitionBy, s.serveOptions())
		if err != nil {
			return 0, Explain{}, err
		}
		set = &execSet{
			setID:    s.nextSet,
			canon:    canon,
			baseSQL:  sql,
			q:        exec,
			stateKey: stateKey,
			baseKey:  baseKey,
			svc:      svc,
			refs:     make(map[QueryID]struct{}),
			since:    s.records,
			founded:  s.applied,
		}
		if shared {
			set.lanes = make(map[engine.ProbeSpec]int)
			set.baseSpec = spec
			set.baseSpec.Kind = exec.Outer
		}
		s.nextSet++
		created = true
	} else if s.dur != nil && set.since != s.records {
		// Retroactive join of a set with unsnapshotted history: fork the live
		// state into a checkpoint snapshot first, so the manifest can commit
		// this member against state that exists on disk — recovery then
		// restores the set from the fork instead of replaying the family's
		// records [since, now).
		if err := s.forkSetLocked(set); err != nil {
			return 0, Explain{}, fmt.Errorf("catalog: fork set %d for late joiner: %w", set.setID, err)
		}
		joinedFork = true
		oldSince = set.since
		set.since = s.records
	}
	prevCanon, hadCanon := s.sets[canon]
	// A join registers the member's canonical form too, so a later exact
	// duplicate of this member finds the set directly. The state maps are
	// touched only at founding: joins found them populated (with this set or
	// a newer one), and the newest set keeps winning.
	s.sets[canon] = set
	if created && shared {
		s.states[stateKey] = set
		if baseKey != "" {
			s.baseKeys[baseKey] = set
		}
	}
	set.refs[id] = struct{}{}
	newLane := false
	if shared {
		set.lanes[spec]++
		newLane = set.lanes[spec] == 1
	}
	reg := &registration{id: id, sql: sql, set: set, plan: plan, canon: canon, shared: shared, spec: spec}
	s.regs[id] = reg

	// Roll back: an unpersisted or unservable registration must not serve.
	// A fork snapshot already written stays on disk (snapDir/snapAt describe
	// physical state); it is reused by the next joiner or swept at rotation.
	rollback := func() {
		delete(s.regs, id)
		delete(set.refs, id)
		if shared {
			if set.lanes[spec]--; set.lanes[spec] == 0 {
				delete(set.lanes, spec)
			}
		}
		if joinedFork {
			set.since = oldSince
		}
		if hadCanon {
			s.sets[canon] = prevCanon
		} else {
			delete(s.sets, canon)
		}
		if created {
			if shared {
				delete(s.states, stateKey)
				if baseKey != "" {
					delete(s.baseKeys, baseKey)
				}
			}
			set.svc.Close()
		}
	}
	if s.dur != nil {
		if err := s.writeManifestLocked(); err != nil {
			rollback()
			return 0, Explain{}, err
		}
	}
	// The member's probe plan is new to the set: (re)install the lane layout.
	// installLanesLocked publishes before returning, so lane reads work the
	// moment Register does; it is a no-op while every member still reads the
	// base result.
	if newLane {
		if err := s.installLanesLocked(set); err != nil {
			rollback()
			var merr error
			if s.dur != nil {
				merr = s.writeManifestLocked()
			}
			return 0, Explain{}, errors.Join(err, merr)
		}
	}
	return id, s.explainLocked(reg), nil
}

// installLanesLocked reconciles an executor set's probe lanes with its
// members' plans and waits for the carrying publication, so lane reads are
// valid the moment the caller returns. While every member's spec is the base
// executor's own (baseSpec), lanes are torn down and reads go through Result.
// Callers hold mu for write.
func (s *Service) installLanesLocked(set *execSet) error {
	specs := make([]engine.ProbeSpec, 0, len(set.lanes))
	allBase := true
	for sp := range set.lanes {
		specs = append(specs, sp)
		if sp != set.baseSpec {
			allBase = false
		}
	}
	if allBase {
		if !set.fanOn {
			return nil
		}
		if err := set.svc.SetProbes(nil); err != nil {
			return err
		}
		if err := set.svc.Drain(); err != nil {
			return err
		}
		set.fanOn = false
		return nil
	}
	if err := set.svc.SetProbes(specs); err != nil {
		return err
	}
	if err := set.svc.Drain(); err != nil {
		return err
	}
	set.fanOn = true
	return nil
}

// Unregister removes a query. The executor set is torn down when its last
// registration leaves; while co-tenants remain, the set — its relation
// state, indexes, and the lanes other members read — stays fully intact,
// and only the departing member's lane is retired (once no other member
// shares its probe plan). The unregistration itself is committed under the
// catalog lock before any lane work; a lane-shrink failure is returned (per
// shard, joined) but leaves only an extra installed lane that no reader
// consults — correctness is unaffected, and the next lane change retries the
// shrink.
func (s *Service) Unregister(id QueryID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	reg, ok := s.regs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownQuery, id)
	}
	set := reg.set
	delete(s.regs, id)
	delete(set.refs, id)
	laneFreed := false
	if reg.shared {
		if set.lanes[reg.spec]--; set.lanes[reg.spec] == 0 {
			delete(set.lanes, reg.spec)
			laneFreed = true
		}
	}
	var orphan *execSet
	var removedCanons []string
	var removedStates, removedBases []string
	if len(set.refs) == 0 {
		orphan = set
		// Members registered their own canonical forms against this set; drop
		// every alias — canonical, state-identity, and masked-identity — not
		// just the departing member's.
		for c, st := range s.sets {
			if st == orphan {
				removedCanons = append(removedCanons, c)
				delete(s.sets, c)
			}
		}
		for k, st := range s.states {
			if st == orphan {
				removedStates = append(removedStates, k)
				delete(s.states, k)
			}
		}
		for k, st := range s.baseKeys {
			if st == orphan {
				removedBases = append(removedBases, k)
				delete(s.baseKeys, k)
			}
		}
	}
	if s.dur != nil {
		if err := s.writeManifestLocked(); err != nil {
			// Roll back so the manifest and the live table agree.
			s.regs[id] = reg
			set.refs[id] = struct{}{}
			if reg.shared {
				set.lanes[reg.spec]++
			}
			for _, c := range removedCanons {
				s.sets[c] = set
			}
			for _, k := range removedStates {
				s.states[k] = set
			}
			for _, k := range removedBases {
				s.baseKeys[k] = set
			}
			return err
		}
	}
	if orphan != nil {
		orphan.svc.Close()
		return nil
	}
	if laneFreed {
		// Shrink the lane layout to the surviving members' plans. The
		// departing registration is already committed; a shard that fails to
		// shrink keeps serving one extra (correct, unread) lane, and the
		// joined per-shard errors say which.
		if err := s.installLanesLocked(set); err != nil {
			return fmt.Errorf("catalog: query %d unregistered, but shrinking set %d's probe lanes failed (an unread lane may remain installed): %w", id, set.setID, err)
		}
	}
	return nil
}

// List reports every registered query's EXPLAIN, ordered by QueryID.
func (s *Service) List() []Explain {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Explain, 0, len(s.regs))
	for _, reg := range s.regs {
		out = append(out, s.explainLocked(reg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of registered queries.
func (s *Service) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.regs)
}

// Default is the lowest live QueryID — the query legacy (pre-v4) wire
// connections are routed to.
func (s *Service) Default() (QueryID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	best, ok := QueryID(0), false
	for id := range s.regs {
		if !ok || id < best {
			best, ok = id, true
		}
	}
	return best, ok
}

// regLocked resolves a QueryID. Callers hold mu (read or write) and must
// KEEP holding it across every use of the registration's executor set:
// Unregister tears a set down under the write lock, so releasing the read
// lock before the serve call would race a concurrent unregistration of a
// co-tenant into a use-after-Close.
func (s *Service) regLocked(id QueryID) (*registration, error) {
	if s.closed {
		return nil, ErrClosed
	}
	reg, ok := s.regs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownQuery, id)
	}
	return reg, nil
}

// Apply ingests one event into every registered query.
func (s *Service) Apply(e engine.Event) error { return s.ApplyBatch([]engine.Event{e}) }

// ApplyBatch ingests one batch into every registered query: one WAL record —
// regardless of query count — then a fan-out to each distinct executor set.
// Batches are serialized so WAL order equals application order.
func (s *Service) ApplyBatch(events []engine.Event) error {
	if len(events) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.dur != nil {
		if err := s.appendWAL(events); err != nil {
			return err
		}
	}
	s.records++
	s.applied++
	var first error
	for _, set := range s.distinctSetsLocked() {
		if err := set.svc.ApplyBatch(events); err != nil {
			set.rejected.Add(uint64(len(events)))
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// distinctSetsLocked lists each live executor set once (registrations can
// share sets), ordered by set ID for deterministic fan-out. Callers hold mu.
func (s *Service) distinctSetsLocked() []*execSet {
	seen := make(map[uint64]*execSet, len(s.regs))
	for _, reg := range s.regs {
		seen[reg.set.setID] = reg.set
	}
	out := make([]*execSet, 0, len(seen))
	for _, set := range seen {
		out = append(out, set)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].setID < out[j].setID })
	return out
}

// encodeBatchRecord frames a batch as one WAL record: a u32-LE
// length-prefixed event encoding per event, the same inner framing the
// single-query serve WAL uses.
func encodeBatchRecord(buf []byte, events []engine.Event) []byte {
	for _, e := range events {
		off := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = engine.EncodeEvent(buf, e)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(buf)-off-4))
	}
	return buf
}

// decodeBatchRecord walks one WAL record's events.
func decodeBatchRecord(rec []byte, dec *engine.EventDecoder, fn func(e engine.Event) error) error {
	for len(rec) > 0 {
		if len(rec) < 4 {
			return errors.New("catalog: truncated WAL record")
		}
		n := binary.LittleEndian.Uint32(rec)
		rec = rec[4:]
		if uint64(n) > uint64(len(rec)) {
			return errors.New("catalog: truncated WAL record")
		}
		e, err := dec.Decode(rec[:n])
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
		rec = rec[n:]
	}
	return nil
}

// Result returns a query's scalar result (the sum across shards). A shared
// member whose set serves lanes reads its own probe lane, not the set's base
// result — the base executor runs the founder's plan; while lanes are down
// (every member's plan IS the base plan), Result is the lane.
func (s *Service) Result(id QueryID) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return 0, err
	}
	if reg.shared && reg.set.fanOn {
		v, ok := reg.set.svc.ProbeResult(reg.spec)
		if !ok {
			return 0, fmt.Errorf("catalog: query %d: probe lane %s not published", id, reg.spec)
		}
		return v, nil
	}
	return reg.set.svc.Result(), nil
}

// ResultGrouped returns a query's grouped results, merged and sorted across
// shards. Shared members read their probe lane's per-partition values (AVG
// lanes finish per partition — each group its partition's exact average).
func (s *Service) ResultGrouped(id QueryID) ([]engine.GroupResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	if reg.shared && reg.set.fanOn {
		g, ok := reg.set.svc.ProbeResultGrouped(reg.spec)
		if !ok {
			return nil, fmt.Errorf("catalog: query %d: probe lane %s not published", id, reg.spec)
		}
		return g, nil
	}
	return reg.set.svc.ResultGrouped(), nil
}

// Subscribe attaches a push subscription to one query's delta stream. A
// shared member's subscription is pinned to its probe lane, so frames carry
// the member's own results.
func (s *Service) Subscribe(id QueryID, opt serve.SubOptions) (*serve.Subscription, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	if reg.shared && reg.set.fanOn {
		sp := reg.spec
		opt.Probe = &sp
	}
	return reg.set.svc.Subscribe(opt)
}

// ShardVersions returns one query's per-shard snapshot versions (for
// subscription resume).
func (s *Service) ShardVersions(id QueryID) ([]serve.ShardVersion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	return reg.set.svc.ShardVersions(), nil
}

// Epoch returns a query's service epoch (for subscription resume).
func (s *Service) Epoch(id QueryID) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return 0, err
	}
	return reg.set.svc.Epoch(), nil
}

// Shards reports the per-query shard count (identical for every query).
func (s *Service) Shards() int {
	if s.opt.Shards > 0 {
		return s.opt.Shards
	}
	return 1 // serve.New's default for Shards <= 0
}

// ShardStats returns one query's per-shard serving counters.
func (s *Service) ShardStats(id QueryID) ([]serve.ShardStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	return reg.set.svc.Stats(), nil
}

// QueryStats is one registered query's serving counters: events applied and
// rejected by its executor set and the number of live push subscribers.
// Queries sharing a set report the same applied/rejected counts — the work
// was done once.
type QueryStats struct {
	ID          QueryID
	SQL         string
	Strategy    string
	SetID       uint64
	Applied     uint64
	Rejected    uint64
	Subscribers int
}

// Stats reports per-query counters, ordered by QueryID.
func (s *Service) Stats() []QueryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]QueryStats, 0, len(s.regs))
	for _, reg := range s.regs {
		var applied uint64
		for _, sh := range reg.set.svc.Stats() {
			applied += sh.Applied
		}
		out = append(out, QueryStats{
			ID:          reg.id,
			SQL:         reg.sql,
			Strategy:    reg.plan.Strategy,
			SetID:       reg.set.setID,
			Applied:     applied,
			Rejected:    reg.set.rejected.Load(),
			Subscribers: reg.set.svc.Subscribers(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Drain blocks until one query's executor set has applied everything
// enqueued before the call.
func (s *Service) Drain(id QueryID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return err
	}
	return reg.set.svc.Drain()
}

// DrainAll drains every executor set and flushes the shared WAL.
func (s *Service) DrainAll() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	var first error
	for _, set := range s.distinctSetsLocked() {
		if err := set.svc.Drain(); err != nil && first == nil {
			first = err
		}
	}
	if s.dur != nil {
		s.ingestMu.Lock()
		if err := s.dur.wal.Sync(); err != nil && first == nil {
			first = err
		}
		s.ingestMu.Unlock()
	}
	return first
}

// Close stops every executor set and closes the WAL. Events still queued are
// applied first (serve.Close drains); the catalog stays recoverable.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	seen := make(map[uint64]bool)
	for _, reg := range s.regs {
		if seen[reg.set.setID] {
			continue
		}
		seen[reg.set.setID] = true
		if err := reg.set.svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.dur != nil {
		if err := s.dur.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
