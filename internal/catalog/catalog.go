// Package catalog is the multi-query serving layer: a prepared-statement
// catalog that owns a set of registered queries, compiles each through the
// sqlparse → query → engine pipeline, and fans one shared ingest stream out
// to every query's sharded executor service.
//
// The lifecycle mirrors the Parse → Prepare → Execute phases of a classic
// query service:
//
//   - Register parses and plans the SQL (Parse/Prepare), assigns a QueryID,
//     and either joins an existing executor set or boots a fresh one;
//   - ApplyBatch executes: the batch is logged ONCE to the catalog's shared
//     WAL — one record per batch regardless of how many queries are
//     registered — then applied to every distinct executor set;
//   - per-query reads (Result, ResultGrouped, Subscribe, Stats) are served
//     by the query's own serve.Service, so every property of the
//     single-query serving layer (sharding, snapshots, coalescing push
//     subscriptions) holds per registered query.
//
// Index sharing: registrations whose canonical query text matches share one
// executor set — and therefore one set of aggregate indexes — provided the
// existing set has not ingested any events yet (otherwise the late
// registration would inherit history an independently-started service would
// not have). Beyond exact matches, family-eligible queries (single-predicate
// scalar aggregate-index strategies, see engine.FamilyKey) that differ ONLY
// in their threshold constant also share: the constant is masked out of the
// family key, the first such registration's executor set maintains the
// relation state and RPAI indexes once, and every member's constant becomes
// a fan lane (serve.SetFan) evaluated at read time — one tree descent serves
// all K thresholds, bit-identical to K dedicated services. Explain reports
// both kinds of sharing and the predicate-structure signature that makes
// family sharing visible.
package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// QueryID names one registered query for its lifetime. IDs are never reused,
// so a stale ID fails loudly instead of silently reading another query.
type QueryID uint64

// ErrUnknownQuery is returned for a QueryID that is not (or no longer)
// registered.
var ErrUnknownQuery = errors.New("catalog: unknown query id")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("catalog: closed")

// Options configures a catalog. PartitionBy applies to every registered
// query (the catalog serves one logical relation, so grouping keys are
// shared); Shards/QueueLen/BatchSize parameterize each query's executor
// service exactly as serve.Options does.
type Options struct {
	PartitionBy []string
	Shards      int
	QueueLen    int
	BatchSize   int
	// Dir, when set, makes the catalog durable: registrations persist in a
	// CATALOG manifest, every applied batch is logged once to a shared WAL,
	// and Recover rebuilds the full catalog after a crash.
	Dir string
}

// registration is one registered query: its ID, the SQL text as submitted,
// and the executor set serving it (shared when another registration has the
// same canonical form, or the same predicate family). famConst is the
// query's threshold constant — the fan lane it reads when its set serves
// multiple constants; meaningful only when set.famKey is non-empty.
type registration struct {
	id       QueryID
	sql      string // original text, echoed in List/Explain
	set      *execSet
	plan     engine.Plan
	canon    string
	famConst float64
}

// execSet is one executor service plus the registrations it serves. since is
// the number of catalog WAL records already written when the set was
// created: the set's state reflects exactly the records [since, records),
// which is what recovery replays into it.
//
// ingested flips (permanently) when the set receives its first batch; both
// sharing rules require !ingested, because a set with history cannot be
// joined by a registration that must start from empty. The flag — not a
// `since == records` comparison — is what stays sound across checkpoint
// rotations, which reset both counters to zero.
//
// famKey/lanes/fanOn exist when the set's query is family-eligible: lanes
// refcounts the member registrations per distinct threshold constant (keyed
// by the constant's bit pattern, matching serve's lane addressing), and
// fanOn records that serve.SetFan has installed the lanes — from then on
// every member reads its own lane, because the base executor's constant is
// just the founder's.
type execSet struct {
	setID    uint64
	canon    string
	q        *query.Query
	svc      *serve.Service[engine.Event]
	refs     map[QueryID]struct{}
	since    uint64
	ingested bool
	famKey   string
	lanes    map[uint64]int
	fanOn    bool
	rejected atomic.Uint64
}

// Service is the catalog. All public methods are safe for concurrent use.
type Service struct {
	opt Options

	// mu guards the registration tables. Ingest holds it for read, Register/
	// Unregister/Checkpoint for write, so a batch never interleaves with a
	// registration change (the alignment that keeps `since` exact).
	mu       sync.RWMutex
	regs     map[QueryID]*registration
	sets     map[string]*execSet // canonical SQL -> newest set for that form
	families map[string]*execSet // engine.FamilyKey -> newest family-eligible set
	nextID   QueryID
	nextSet  uint64
	closed   bool

	// ingestMu serializes ApplyBatch so the WAL record order equals the
	// per-shard application order — the invariant recovery replay relies on.
	ingestMu sync.Mutex
	records  uint64 // WAL records written this generation (== batches applied)

	dur *durableState // nil for in-memory catalogs
}

// New builds a catalog. With Options.Dir set it becomes durable: an existing
// catalog directory is rejected (use Recover for that); otherwise the
// manifest and WAL for generation 1 are created before New returns.
func New(opt Options) (*Service, error) {
	if len(opt.PartitionBy) == 0 {
		return nil, errors.New("catalog: Options.PartitionBy must name at least one column")
	}
	s := &Service{
		opt:      opt,
		regs:     make(map[QueryID]*registration),
		sets:     make(map[string]*execSet),
		families: make(map[string]*execSet),
		nextID:   1,
		nextSet:  1,
	}
	if opt.Dir != "" {
		if err := s.initDurable(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// serveOptions are the per-set service options: never durable on their own —
// the catalog's shared WAL is the only log.
func (s *Service) serveOptions() serve.Options {
	return serve.Options{Shards: s.opt.Shards, QueueLen: s.opt.QueueLen, BatchSize: s.opt.BatchSize}
}

// Register parses, plans, and activates one query, returning its ID and
// EXPLAIN output. A malformed or unsupported query fails with the parser's
// positioned error or the planner's rejection; nothing is registered.
func (s *Service) Register(sql string) (QueryID, Explain, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, Explain{}, err
	}
	plan, err := engine.Describe(q)
	if err != nil {
		return 0, Explain{}, err
	}
	canon := q.String()
	famKey, famConst, famOK := engine.FamilyKey(q)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, Explain{}, ErrClosed
	}
	id := s.nextID
	s.nextID++

	// Join an existing set only while it is still empty: a set that has
	// ingested events carries history this registration must not see. Exact
	// canonical matches share outright; failing that, a family-eligible
	// query joins the newest set with the same predicate structure — its
	// threshold constant becomes one more fan lane on the shared indexes.
	set := s.sets[canon]
	if set != nil && set.ingested {
		set = nil
	}
	if set == nil && famOK {
		if fs := s.families[famKey]; fs != nil && !fs.ingested {
			set = fs
		}
	}
	created := false
	if set == nil {
		svc, err := serve.ForQuery(q, s.opt.PartitionBy, s.serveOptions())
		if err != nil {
			return 0, Explain{}, err
		}
		set = &execSet{
			setID: s.nextSet,
			canon: canon,
			q:     q,
			svc:   svc,
			refs:  make(map[QueryID]struct{}),
			since: s.records,
		}
		if famOK {
			set.famKey = famKey
			set.lanes = make(map[uint64]int)
		}
		s.nextSet++
		created = true
	}
	prevCanon, hadCanon := s.sets[canon]
	var prevFam *execSet
	var hadFam bool
	if set.famKey != "" {
		prevFam, hadFam = s.families[set.famKey]
	}
	// A family join registers the member's canonical form too, so a later
	// exact duplicate of this member finds the set directly.
	s.sets[canon] = set
	if set.famKey != "" {
		s.families[set.famKey] = set
	}
	set.refs[id] = struct{}{}
	newLane := false
	if set.famKey != "" {
		bits := math.Float64bits(famConst)
		set.lanes[bits]++
		newLane = set.lanes[bits] == 1
	}
	reg := &registration{id: id, sql: sql, set: set, plan: plan, canon: canon, famConst: famConst}
	s.regs[id] = reg

	// Roll back: an unpersisted or unservable registration must not serve.
	rollback := func() {
		delete(s.regs, id)
		delete(set.refs, id)
		if set.famKey != "" {
			bits := math.Float64bits(famConst)
			if set.lanes[bits]--; set.lanes[bits] == 0 {
				delete(set.lanes, bits)
			}
			if hadFam {
				s.families[set.famKey] = prevFam
			} else {
				delete(s.families, set.famKey)
			}
		}
		if hadCanon {
			s.sets[canon] = prevCanon
		} else {
			delete(s.sets, canon)
		}
		if created {
			set.svc.Close()
		}
	}
	if s.dur != nil {
		if err := s.writeManifestLocked(); err != nil {
			rollback()
			return 0, Explain{}, err
		}
	}
	// The set now serves a second (or later) distinct constant: install every
	// member's lane. The set is empty here — the join rule admits members
	// only before ingest — so the re-evaluation is cheap, and SetFan+Drain
	// publishing before Register returns means lane reads work immediately.
	if newLane && len(set.lanes) > 1 {
		if err := s.installLanesLocked(set); err != nil {
			rollback()
			var merr error
			if s.dur != nil {
				merr = s.writeManifestLocked()
			}
			return 0, Explain{}, errors.Join(err, merr)
		}
	}
	return id, s.explainLocked(reg), nil
}

// installLanesLocked (re)installs an executor set's fan lanes from its lane
// refcounts and waits for the carrying publication, so lane reads are valid
// the moment the caller returns. Callers hold mu for write.
func (s *Service) installLanesLocked(set *execSet) error {
	consts := make([]float64, 0, len(set.lanes))
	for bits := range set.lanes {
		consts = append(consts, math.Float64frombits(bits))
	}
	if err := set.svc.SetFan(consts); err != nil {
		return err
	}
	if err := set.svc.Drain(); err != nil {
		return err
	}
	set.fanOn = true
	return nil
}

// Unregister removes a query. The executor set is torn down when its last
// registration leaves; while co-tenants remain, the set — its relation
// state, indexes, and the lanes other members read — stays fully intact,
// and only the departing member's lane is retired (once no other member
// shares its constant).
func (s *Service) Unregister(id QueryID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	reg, ok := s.regs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownQuery, id)
	}
	set := reg.set
	delete(s.regs, id)
	delete(set.refs, id)
	laneFreed := false
	var bits uint64
	if set.famKey != "" {
		bits = math.Float64bits(reg.famConst)
		if set.lanes[bits]--; set.lanes[bits] == 0 {
			delete(set.lanes, bits)
			laneFreed = true
		}
	}
	var orphan *execSet
	var removedCanons []string
	famRemoved := false
	if len(set.refs) == 0 {
		orphan = set
		// Family members registered their own canonical forms against this
		// set; drop every alias, not just the departing member's.
		for c, st := range s.sets {
			if st == orphan {
				removedCanons = append(removedCanons, c)
				delete(s.sets, c)
			}
		}
		if orphan.famKey != "" && s.families[orphan.famKey] == orphan {
			delete(s.families, orphan.famKey)
			famRemoved = true
		}
	}
	if s.dur != nil {
		if err := s.writeManifestLocked(); err != nil {
			// Roll back so the manifest and the live table agree.
			s.regs[id] = reg
			set.refs[id] = struct{}{}
			if set.famKey != "" {
				set.lanes[bits]++
			}
			for _, c := range removedCanons {
				s.sets[c] = set
			}
			if famRemoved {
				s.families[orphan.famKey] = orphan
			}
			return err
		}
	}
	if orphan != nil {
		orphan.svc.Close()
	} else if laneFreed && set.fanOn {
		// Shrink the fan to the surviving members' lanes. Best-effort: a
		// failure leaves one stale lane behind, which costs a probe per
		// commit but serves no reader and stays correct.
		_ = s.installLanesLocked(set)
	}
	return nil
}

// List reports every registered query's EXPLAIN, ordered by QueryID.
func (s *Service) List() []Explain {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Explain, 0, len(s.regs))
	for _, reg := range s.regs {
		out = append(out, s.explainLocked(reg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of registered queries.
func (s *Service) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.regs)
}

// Default is the lowest live QueryID — the query legacy (pre-v4) wire
// connections are routed to.
func (s *Service) Default() (QueryID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	best, ok := QueryID(0), false
	for id := range s.regs {
		if !ok || id < best {
			best, ok = id, true
		}
	}
	return best, ok
}

// regLocked resolves a QueryID. Callers hold mu (read or write) and must
// KEEP holding it across every use of the registration's executor set:
// Unregister tears a set down under the write lock, so releasing the read
// lock before the serve call would race a concurrent unregistration of a
// co-tenant into a use-after-Close.
func (s *Service) regLocked(id QueryID) (*registration, error) {
	if s.closed {
		return nil, ErrClosed
	}
	reg, ok := s.regs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownQuery, id)
	}
	return reg, nil
}

// Apply ingests one event into every registered query.
func (s *Service) Apply(e engine.Event) error { return s.ApplyBatch([]engine.Event{e}) }

// ApplyBatch ingests one batch into every registered query: one WAL record —
// regardless of query count — then a fan-out to each distinct executor set.
// Batches are serialized so WAL order equals application order.
func (s *Service) ApplyBatch(events []engine.Event) error {
	if len(events) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.dur != nil {
		if err := s.appendWAL(events); err != nil {
			return err
		}
	}
	s.records++
	var first error
	for _, set := range s.distinctSetsLocked() {
		// The set now carries history, so it is permanently closed to new
		// joiners. Written under ingestMu (writers serialized) and read only
		// under the write lock (which excludes ingest), so the flag needs no
		// atomics.
		set.ingested = true
		if err := set.svc.ApplyBatch(events); err != nil {
			set.rejected.Add(uint64(len(events)))
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// distinctSetsLocked lists each live executor set once (registrations can
// share sets), ordered by set ID for deterministic fan-out. Callers hold mu.
func (s *Service) distinctSetsLocked() []*execSet {
	seen := make(map[uint64]*execSet, len(s.regs))
	for _, reg := range s.regs {
		seen[reg.set.setID] = reg.set
	}
	out := make([]*execSet, 0, len(seen))
	for _, set := range seen {
		out = append(out, set)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].setID < out[j].setID })
	return out
}

// encodeBatchRecord frames a batch as one WAL record: a u32-LE
// length-prefixed event encoding per event, the same inner framing the
// single-query serve WAL uses.
func encodeBatchRecord(buf []byte, events []engine.Event) []byte {
	for _, e := range events {
		off := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = engine.EncodeEvent(buf, e)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(buf)-off-4))
	}
	return buf
}

// decodeBatchRecord walks one WAL record's events.
func decodeBatchRecord(rec []byte, dec *engine.EventDecoder, fn func(e engine.Event) error) error {
	for len(rec) > 0 {
		if len(rec) < 4 {
			return errors.New("catalog: truncated WAL record")
		}
		n := binary.LittleEndian.Uint32(rec)
		rec = rec[4:]
		if uint64(n) > uint64(len(rec)) {
			return errors.New("catalog: truncated WAL record")
		}
		e, err := dec.Decode(rec[:n])
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
		rec = rec[n:]
	}
	return nil
}

// Result returns a query's scalar result (the sum across shards). A family
// member reads its own fan lane, not the set's base result — the base
// executor carries the founder's constant.
func (s *Service) Result(id QueryID) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return 0, err
	}
	if reg.set.fanOn {
		v, ok := reg.set.svc.FanResult(reg.famConst)
		if !ok {
			return 0, fmt.Errorf("catalog: query %d: fan lane %v not published", id, reg.famConst)
		}
		return v, nil
	}
	return reg.set.svc.Result(), nil
}

// ResultGrouped returns a query's grouped results, merged and sorted across
// shards. Family members read their fan lane's per-partition values.
func (s *Service) ResultGrouped(id QueryID) ([]engine.GroupResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	if reg.set.fanOn {
		g, ok := reg.set.svc.FanResultGrouped(reg.famConst)
		if !ok {
			return nil, fmt.Errorf("catalog: query %d: fan lane %v not published", id, reg.famConst)
		}
		return g, nil
	}
	return reg.set.svc.ResultGrouped(), nil
}

// Subscribe attaches a push subscription to one query's delta stream. A
// family member's subscription is pinned to its fan lane, so frames carry
// the member's own results.
func (s *Service) Subscribe(id QueryID, opt serve.SubOptions) (*serve.Subscription, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	if reg.set.fanOn {
		c := reg.famConst
		opt.FanConst = &c
	}
	return reg.set.svc.Subscribe(opt)
}

// ShardVersions returns one query's per-shard snapshot versions (for
// subscription resume).
func (s *Service) ShardVersions(id QueryID) ([]serve.ShardVersion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	return reg.set.svc.ShardVersions(), nil
}

// Epoch returns a query's service epoch (for subscription resume).
func (s *Service) Epoch(id QueryID) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return 0, err
	}
	return reg.set.svc.Epoch(), nil
}

// Shards reports the per-query shard count (identical for every query).
func (s *Service) Shards() int {
	if s.opt.Shards > 0 {
		return s.opt.Shards
	}
	return 1 // serve.New's default for Shards <= 0
}

// ShardStats returns one query's per-shard serving counters.
func (s *Service) ShardStats(id QueryID) ([]serve.ShardStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return nil, err
	}
	return reg.set.svc.Stats(), nil
}

// QueryStats is one registered query's serving counters: events applied and
// rejected by its executor set and the number of live push subscribers.
// Queries sharing a set report the same applied/rejected counts — the work
// was done once.
type QueryStats struct {
	ID          QueryID
	SQL         string
	Strategy    string
	SetID       uint64
	Applied     uint64
	Rejected    uint64
	Subscribers int
}

// Stats reports per-query counters, ordered by QueryID.
func (s *Service) Stats() []QueryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]QueryStats, 0, len(s.regs))
	for _, reg := range s.regs {
		var applied uint64
		for _, sh := range reg.set.svc.Stats() {
			applied += sh.Applied
		}
		out = append(out, QueryStats{
			ID:          reg.id,
			SQL:         reg.sql,
			Strategy:    reg.plan.Strategy,
			SetID:       reg.set.setID,
			Applied:     applied,
			Rejected:    reg.set.rejected.Load(),
			Subscribers: reg.set.svc.Subscribers(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Drain blocks until one query's executor set has applied everything
// enqueued before the call.
func (s *Service) Drain(id QueryID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, err := s.regLocked(id)
	if err != nil {
		return err
	}
	return reg.set.svc.Drain()
}

// DrainAll drains every executor set and flushes the shared WAL.
func (s *Service) DrainAll() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	var first error
	for _, set := range s.distinctSetsLocked() {
		if err := set.svc.Drain(); err != nil && first == nil {
			first = err
		}
	}
	if s.dur != nil {
		s.ingestMu.Lock()
		if err := s.dur.wal.Sync(); err != nil && first == nil {
			first = err
		}
		s.ingestMu.Unlock()
	}
	return first
}

// Close stops every executor set and closes the WAL. Events still queued are
// applied first (serve.Close drains); the catalog stays recoverable.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	seen := make(map[uint64]bool)
	for _, reg := range s.regs {
		if seen[reg.set.setID] {
			continue
		}
		seen[reg.set.setID] = true
		if err := reg.set.svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.dur != nil {
		if err := s.dur.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
