package catalog

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rpai/internal/checkpoint"
	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// The catalog serves one logical relation whose tuples carry these columns;
// sym is the partition key throughout.
const (
	sqlVWAP = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	// sqlVWAP2 is sqlVWAP with different whitespace/case: same canonical form,
	// so it shares the first registration's indexes.
	sqlVWAP2 = `select sum(b.price * b.volume) from bids b where 0.75 * (select sum(b1.volume) from bids b1) < (select sum(b2.volume) from bids b2 where b2.price <= b.price)`
	// sqlVWAP90 differs only in the threshold constant: same predicate
	// signature, different canonical form — its own executor set.
	sqlVWAP90 = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE 0.9 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	sqlEq = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE 0.5 * (SELECT SUM(b1.volume) FROM bids b1)
    = (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.a = b.a)`
	sqlNested = `SELECT SUM(b.volume) FROM bids b
WHERE b.volume > 0.001 * (SELECT SUM(b1.volume) FROM bids b1)
AND 0.5 * (SELECT COUNT(*) FROM bids b2) <= (SELECT COUNT(*) FROM bids b3 WHERE b3.price <= b.price)`
)

func mustParse(t *testing.T, sql string) *query.Query {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// catEvents generates an insert/delete trace over sym partitions with the
// column set every test query touches.
func catEvents(seed int64, n, partitions int) []engine.Event {
	rng := rand.New(rand.NewSource(seed))
	var live []query.Tuple
	out := make([]engine.Event, 0, n)
	for i := 0; i < n; i++ {
		if len(live) > 0 && rng.Float64() < 0.25 {
			j := rng.Intn(len(live))
			out = append(out, engine.Delete(live[j]))
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		tup := query.Tuple{
			"sym":    float64(rng.Intn(partitions)),
			"price":  float64(rng.Intn(30) + 1),
			"volume": float64(rng.Intn(20) + 1),
			"a":      float64(rng.Intn(8) + 1),
		}
		live = append(live, tup)
		out = append(out, engine.Insert(tup))
	}
	return out
}

// applyBatches streams events in fixed-size batches through fn.
func applyBatches(t *testing.T, events []engine.Event, size int, fn func([]engine.Event) error) {
	t.Helper()
	for len(events) > 0 {
		n := size
		if n > len(events) {
			n = len(events)
		}
		if err := fn(events[:n]); err != nil {
			t.Fatal(err)
		}
		events = events[n:]
	}
}

// groupsEqual is bit-exact equality of grouped results.
func groupsEqual(a, b []engine.GroupResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Key) != len(b[i].Key) || a[i].Value != b[i].Value {
			return false
		}
		for j := range a[i].Key {
			if a[i].Key[j] != b[i].Key[j] {
				return false
			}
		}
	}
	return true
}

func TestCatalogRegisterSharingExplain(t *testing.T) {
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	id1, ex1, err := cat.Register(sqlVWAP)
	if err != nil {
		t.Fatal(err)
	}
	if ex1.Strategy != "relstate" || ex1.IndexKind != "rpai-arena" || ex1.KeyCol != "price" {
		t.Fatalf("vwap explain = %+v", ex1)
	}
	if len(ex1.SharedWith) != 0 {
		t.Fatalf("first registration shares: %v", ex1.SharedWith)
	}
	if ex1.StateKey == "" || ex1.Probe != "sum@0.75" {
		t.Fatalf("vwap state/probe split = %q / %q", ex1.StateKey, ex1.Probe)
	}

	// Same canonical form, still no ingest: must share the executor set.
	id2, ex2, err := cat.Register(sqlVWAP2)
	if err != nil {
		t.Fatal(err)
	}
	if ex1.Canonical != ex2.Canonical {
		t.Fatalf("canonical forms differ: %q vs %q", ex1.Canonical, ex2.Canonical)
	}
	if len(ex2.SharedWith) != 1 || ex2.SharedWith[0] != id1 {
		t.Fatalf("shared-with = %v, want [%d]", ex2.SharedWith, id1)
	}
	if len(ex2.SharedExact) != 1 || ex2.SharedExact[0] != id1 || len(ex2.SharedFamily) != 0 {
		t.Fatalf("exact sharing split = exact %v family %v", ex2.SharedExact, ex2.SharedFamily)
	}

	// Different constant: same predicate signature, so the registration
	// joins the family set as its own fan lane rather than founding a set.
	_, ex3, err := cat.Register(sqlVWAP90)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex3.SharedWith) != 2 {
		t.Fatalf("family registration shared-with = %v, want both vwap ids", ex3.SharedWith)
	}
	if len(ex3.SharedFamily) != 2 || len(ex3.SharedExact) != 0 {
		t.Fatalf("family sharing split = exact %v family %v", ex3.SharedExact, ex3.SharedFamily)
	}
	if ex3.PredSig != ex1.PredSig {
		t.Fatalf("predicate signatures differ:\n %s\n %s", ex3.PredSig, ex1.PredSig)
	}
	if ex3.Canonical == ex1.Canonical {
		t.Fatal("different constants rendered to the same canonical form")
	}

	if _, ex4, err := cat.Register(sqlEq); err != nil {
		t.Fatal(err)
	} else if ex4.Strategy != "aggindex" || ex4.IndexKind != "pai" || ex4.KeyCol != "a" {
		t.Fatalf("eq explain = %+v", ex4)
	}
	if _, ex5, err := cat.Register(sqlNested); err != nil {
		t.Fatal(err)
	} else if ex5.Strategy != "general" {
		t.Fatalf("nested explain = %+v", ex5)
	}

	// Joining is retroactive: a registration arriving after ingest still
	// joins its set and inherits the family's history — it is the family's
	// variant, not a fresh query starting from empty.
	events := catEvents(3, 200, 5)
	applyBatches(t, events, 32, cat.ApplyBatch)
	idLate, exLate, err := cat.Register(sqlVWAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(exLate.SharedWith) != 3 {
		t.Fatalf("post-ingest registration shares with %v, want the three vwap ids", exLate.SharedWith)
	}
	if exLate.StateSince != 0 {
		t.Fatalf("late joiner's StateSince = %d, want the family's founding epoch 0", exLate.StateSince)
	}
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}
	r1, err := cat.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cat.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	rLate, err := cat.Result(idLate)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("shared registrations disagree: %v vs %v", r1, r2)
	}
	if rLate != r1 {
		t.Fatalf("retroactive joiner reads %v, family reads %v", rLate, r1)
	}

	// List is ordered by ID and Unregister of one sharer keeps the set alive.
	list := cat.List()
	if len(list) != 6 {
		t.Fatalf("List len = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatal("List not ordered by ID")
		}
	}
	if err := cat.Unregister(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Result(id1); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("Result after Unregister: %v", err)
	}
	if got, err := cat.Result(id2); err != nil || got != r2 {
		t.Fatalf("surviving sharer after Unregister: %v, %v", got, err)
	}
	if err := cat.Unregister(id1); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("double Unregister: %v", err)
	}
}

func TestCatalogRejectsBadQueries(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without PartitionBy accepted")
	}
	cat, err := New(Options{PartitionBy: []string{"sym"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	var pe *sqlparse.ParseError
	if _, _, err := cat.Register("SELECT MIN(a.price) FROM r a"); !errors.As(err, &pe) {
		t.Fatalf("bad SQL error = %v", err)
	}
	if cat.Len() != 0 {
		t.Fatal("failed Register left a registration behind")
	}
	cat.Close()
	if _, _, err := cat.Register(sqlVWAP); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close: %v", err)
	}
	if err := cat.ApplyBatch(catEvents(1, 4, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("ApplyBatch after Close: %v", err)
	}
}

// TestCatalogDifferential16 is the acceptance-criterion differential: a
// catalog of 16 registered queries must be bit-identical — scalar and
// grouped — to 16 independent single-query services fed the same batches.
func TestCatalogDifferential16(t *testing.T) {
	sqls := []string{
		sqlVWAP, sqlVWAP2, sqlVWAP90, sqlEq, sqlNested,
		sqlVWAP, sqlEq, sqlVWAP90, sqlNested, sqlVWAP2,
		sqlVWAP, sqlVWAP90, sqlEq, sqlNested, sqlVWAP, sqlEq,
	}
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 3, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	ids := make([]QueryID, len(sqls))
	indep := make([]*serve.Service[engine.Event], len(sqls))
	for i, sql := range sqls {
		id, _, err := cat.Register(sql)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		svc, err := serve.ForQuery(mustParse(t, sql), []string{"sym"}, serve.Options{Shards: 3, BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		indep[i] = svc
		defer svc.Close()
	}

	events := catEvents(11, 3000, 17)
	applyBatches(t, events, 64, func(batch []engine.Event) error {
		if err := cat.ApplyBatch(batch); err != nil {
			return err
		}
		for _, svc := range indep {
			if err := svc.ApplyBatch(batch); err != nil {
				return err
			}
		}
		return nil
	})
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for i, svc := range indep {
		if err := svc.Drain(); err != nil {
			t.Fatal(err)
		}
		got, err := cat.Result(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if want := svc.Result(); got != want {
			t.Fatalf("query %d (%q): catalog %v, independent %v", i, sqls[i][:40], got, want)
		}
		gotG, err := cat.ResultGrouped(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if !groupsEqual(gotG, svc.ResultGrouped()) {
			t.Fatalf("query %d: grouped results diverged", i)
		}
	}
}

// TestCatalogOneWALRecordPerBatch pins the tentpole's durability contract:
// the WAL grows by exactly one record per applied batch no matter how many
// queries are registered.
func TestCatalogOneWALRecordPerBatch(t *testing.T) {
	dir := t.TempDir()
	cat, err := New(Options{PartitionBy: []string{"sym"}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{sqlVWAP, sqlVWAP90, sqlEq, sqlNested} {
		if _, _, err := cat.Register(sql); err != nil {
			t.Fatal(err)
		}
	}
	events := catEvents(5, 300, 7)
	const batchSize = 25
	batches := 0
	applyBatches(t, events, batchSize, func(b []engine.Event) error {
		batches++
		return cat.ApplyBatch(b)
	})
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	records, evs := 0, 0
	var dec engine.EventDecoder
	h, _, err := checkpoint.ReadWAL(walPath(dir, 1), func(rec []byte) error {
		records++
		return decodeBatchRecord(rec, &dec, func(engine.Event) error {
			evs++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Gen != 1 || h.ShardCount != 1 {
		t.Fatalf("WAL header = %+v", h)
	}
	if records != batches {
		t.Fatalf("WAL has %d records for %d batches", records, batches)
	}
	if evs != len(events) {
		t.Fatalf("WAL replays %d events, ingested %d", evs, len(events))
	}
}

// crashCopy clones a catalog directory, simulating recovery on the files a
// crash would leave behind (the WAL is flushed per batch, so a drained
// catalog's directory is exactly the post-crash state).
func crashCopy(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestCatalogRecover(t *testing.T) {
	dir := t.TempDir()
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 2, BatchSize: 16, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sqls := []string{sqlVWAP, sqlVWAP2, sqlEq, sqlNested}
	ids := make([]QueryID, len(sqls))
	for i, sql := range sqls {
		if ids[i], _, err = cat.Register(sql); err != nil {
			t.Fatal(err)
		}
	}
	events := catEvents(19, 1200, 9)
	pre, post := events[:800], events[800:]
	applyBatches(t, pre, 48, cat.ApplyBatch)
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A constant variant registered after the checkpoint joins the vwap state
	// set (its snapshot is current, so no fork is needed); a structurally new
	// query founds a set with no snapshot directory and recovers from the WAL
	// suffix alone.
	idLate, _, err := cat.Register(sqlVWAP90)
	if err != nil {
		t.Fatal(err)
	}
	const sqlNested40 = `SELECT SUM(b.volume) FROM bids b
WHERE b.volume > 0.001 * (SELECT SUM(b1.volume) FROM bids b1)
AND 0.4 * (SELECT COUNT(*) FROM bids b2) <= (SELECT COUNT(*) FROM bids b3 WHERE b3.price <= b.price)`
	idFresh, exFresh, err := cat.Register(sqlNested40)
	if err != nil {
		t.Fatal(err)
	}
	if len(exFresh.SharedWith) != 0 {
		t.Fatalf("structurally new query shares: %v", exFresh.SharedWith)
	}
	applyBatches(t, post, 48, cat.ApplyBatch)
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}

	want := map[QueryID]float64{}
	wantG := map[QueryID][]engine.GroupResult{}
	for _, id := range append(append([]QueryID{}, ids...), idLate, idFresh) {
		if want[id], err = cat.Result(id); err != nil {
			t.Fatal(err)
		}
		if wantG[id], err = cat.ResultGrouped(id); err != nil {
			t.Fatal(err)
		}
	}
	crash := crashCopy(t, dir)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	for name, rdir := range map[string]string{"clean": dir, "crash": crash} {
		rec, err := Recover(Options{Dir: rdir, Shards: 2, BatchSize: 16})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.Len() != len(sqls)+2 {
			t.Fatalf("%s: recovered %d registrations, want %d", name, rec.Len(), len(sqls)+2)
		}
		// Sharing survives: the two vwap registrations still explain each
		// other, and the post-checkpoint constant variant that joined their
		// state set retroactively is still a member.
		ex, err := rec.Get(ids[0])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ex.SharedWith) != 2 || ex.SharedWith[0] != ids[1] || ex.SharedWith[1] != idLate {
			t.Fatalf("%s: recovered sharing = %v", name, ex.SharedWith)
		}
		for id, w := range want {
			got, err := rec.Result(id)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got != w {
				t.Fatalf("%s: query %d recovered %v, want %v", name, id, got, w)
			}
			gotG, err := rec.ResultGrouped(id)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !groupsEqual(gotG, wantG[id]) {
				t.Fatalf("%s: query %d grouped results diverged after recovery", name, id)
			}
		}
		// The recovered catalog keeps serving: new ingest and registration work.
		if _, _, err := rec.Register(sqlVWAP90); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		applyBatches(t, catEvents(23, 60, 9), 20, rec.ApplyBatch)
		if err := rec.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	// New on an existing catalog directory must refuse, not truncate.
	if _, err := New(Options{PartitionBy: []string{"sym"}, Dir: dir}); err == nil {
		t.Fatal("New on an existing catalog directory accepted")
	}
	// Mismatched partition columns are rejected.
	if _, err := Recover(Options{Dir: dir, PartitionBy: []string{"other"}}); err == nil {
		t.Fatal("Recover with mismatched partition columns accepted")
	}
}

// TestCatalogRecoverDoubleCrash recovers, ingests more, crashes again, and
// recovers again — the rotation at the end of Recover must leave a directory
// that recovers cleanly.
func TestCatalogRecoverDoubleCrash(t *testing.T) {
	dir := t.TempDir()
	cat, err := New(Options{PartitionBy: []string{"sym"}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cat.Register(sqlVWAP); err != nil {
		t.Fatal(err)
	}
	events := catEvents(31, 600, 5)
	applyBatches(t, events[:200], 32, cat.ApplyBatch)
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}
	c1 := crashCopy(t, dir)
	cat.Close()

	rec1, err := Recover(Options{Dir: c1})
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, events[200:], 32, rec1.ApplyBatch)
	if err := rec1.DrainAll(); err != nil {
		t.Fatal(err)
	}
	var id QueryID
	if d, ok := rec1.Default(); ok {
		id = d
	} else {
		t.Fatal("no default query after recovery")
	}
	want, err := rec1.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	c2 := crashCopy(t, c1)
	rec1.Close()

	rec2, err := Recover(Options{Dir: c2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if got, err := rec2.Result(id); err != nil || got != want {
		t.Fatalf("second recovery: %v, %v (want %v)", got, err, want)
	}
	// Cross-check the full trace against a fresh engine reference.
	ref, err := serve.ForQuery(mustParse(t, sqlVWAP), []string{"sym"}, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	if want != ref.Result() {
		t.Fatalf("recovered result %v, reference %v", want, ref.Result())
	}
}

func TestCatalogStatsAndSubscribe(t *testing.T) {
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	id1, _, err := cat.Register(sqlVWAP)
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := cat.Register(sqlEq)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cat.Subscribe(id1, serve.SubOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	events := catEvents(41, 120, 4)
	applyBatches(t, events, 30, cat.ApplyBatch)
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}

	stats := cat.Stats()
	if len(stats) != 2 || stats[0].ID != id1 || stats[1].ID != id2 {
		t.Fatalf("Stats = %+v", stats)
	}
	for _, st := range stats {
		if st.Applied != uint64(len(events)) {
			t.Fatalf("query %d applied %d, want %d", st.ID, st.Applied, len(events))
		}
		if st.Rejected != 0 {
			t.Fatalf("query %d rejected %d", st.ID, st.Rejected)
		}
	}
	if stats[0].Subscribers != 1 || stats[1].Subscribers != 0 {
		t.Fatalf("subscriber counts = %d, %d", stats[0].Subscribers, stats[1].Subscribers)
	}
	if stats[0].SetID == stats[1].SetID {
		t.Fatal("distinct queries report the same executor set")
	}

	// The subscription observed the ingest: frames must reach every shard's
	// post-drain snapshot version.
	shardStats, err := cat.ShardStats(id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shardStats) != 2 {
		t.Fatalf("ShardStats len = %d", len(shardStats))
	}
	target, err := cat.ShardVersions(id1)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]uint64, len(target))
	for _, sv := range target {
		want[sv.Shard] = sv.Version
	}
	deadline := time.After(5 * time.Second)
	versions := make(map[int]uint64)
	current := func() bool {
		for sh, v := range want {
			if versions[sh] < v {
				return false
			}
		}
		return true
	}
	for !current() {
		select {
		case f, ok := <-sub.Frames():
			if !ok {
				t.Fatal("subscription closed early")
			}
			versions[f.Shard] = f.Version
		case <-deadline:
			t.Fatalf("subscription stalled at %v, want %v", versions, want)
		}
	}
}

// writeCatalogV1 writes a CATALOG manifest in the pre-family version-1
// layout: no flags byte, no lane constant after each entry's SQL.
func writeCatalogV1(t *testing.T, dir string, nextID, nextSet uint64, partitionBy []string, entries []catEntry) {
	t.Helper()
	var rec bytes.Buffer
	e := checkpoint.NewEncoder(&rec)
	e.U32(1) // version
	e.U64(1) // gen
	e.U64(nextID)
	e.U64(nextSet)
	e.U32(uint32(len(partitionBy)))
	for _, c := range partitionBy {
		e.Str(c)
	}
	e.U32(uint32(len(entries)))
	for _, ent := range entries {
		e.U64(uint64(ent.id))
		e.U64(ent.setID)
		e.U64(ent.since)
		e.Str(ent.sql)
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString(catalogMagic)
	if err := checkpoint.WriteRecord(&buf, rec.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, catalogName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCatalogRecoverV1Manifest recovers a directory written by the
// pre-family manifest format: a version-1 CATALOG where the two constant
// variants occupy separate executor sets and carry no plan fields.
// Recovery must accept it, re-derive each member's probe plan from its SQL,
// keep the persisted set topology (recovery never merges sets — only new
// registrations join retroactively), and serve bit-identical results.
func TestCatalogRecoverV1Manifest(t *testing.T) {
	dir := t.TempDir()
	events := catEvents(47, 400, 7)

	// Hand-write the v1 on-disk state: manifest plus the shared WAL, no
	// snapshot directories (the crash predates the first checkpoint, so
	// every set recovers from its WAL suffix alone).
	wal, err := checkpoint.CreateWAL(walPath(dir, 1), checkpoint.Header{Gen: 1, Shard: 0, ShardCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, events, 32, func(b []engine.Event) error {
		return wal.Append(encodeBatchRecord(nil, b))
	})
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	writeCatalogV1(t, dir, 4, 3, []string{"sym"}, []catEntry{
		{id: 1, setID: 1, since: 0, sql: sqlVWAP},
		{id: 2, setID: 2, since: 0, sql: sqlVWAP90},
		{id: 3, setID: 1, since: 0, sql: sqlVWAP2}, // exact duplicate in set 1
	})

	rec, err := Recover(Options{Dir: dir, Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.DrainAll(); err != nil {
		t.Fatal(err)
	}

	// Bit-identical to fresh single-query references over the same trace.
	for id, sql := range map[QueryID]string{1: sqlVWAP, 2: sqlVWAP90, 3: sqlVWAP2} {
		ref, err := serve.ForQuery(mustParse(t, sql), []string{"sym"}, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyBatch(events); err != nil {
			t.Fatal(err)
		}
		if err := ref.Drain(); err != nil {
			t.Fatal(err)
		}
		got, err := rec.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := ref.Result(); got != want {
			t.Fatalf("query %d recovered %v, reference %v", id, got, want)
		}
		gotG, err := rec.ResultGrouped(id)
		if err != nil {
			t.Fatal(err)
		}
		if !groupsEqual(gotG, ref.ResultGrouped()) {
			t.Fatalf("query %d grouped results diverged", id)
		}
		ref.Close()
	}

	// The v1 topology survives: the exact duplicates share set 1, the
	// constant variant keeps set 2, and the sharing report reflects it.
	stats := rec.Stats()
	if len(stats) != 3 {
		t.Fatalf("recovered %d registrations, want 3", len(stats))
	}
	if stats[0].SetID != stats[2].SetID || stats[0].SetID == stats[1].SetID {
		t.Fatalf("set topology = %d/%d/%d, want 1 and 3 together, 2 apart",
			stats[0].SetID, stats[1].SetID, stats[2].SetID)
	}
	ex1, err := rec.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := rec.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex1.SharedExact) != 1 || ex1.SharedExact[0] != 3 || len(ex1.SharedFamily) != 0 {
		t.Fatalf("query 1 sharing = exact %v family %v", ex1.SharedExact, ex1.SharedFamily)
	}
	if ex1.PredSig != ex2.PredSig {
		t.Fatal("constant variants lost their shared predicate signature")
	}

	// The recovered catalog keeps serving: a new constant variant joins the
	// newest recovered family set retroactively — inheriting its history —
	// and continued ingest stays readable everywhere.
	id4, ex4, err := rec.Register(sqlVWAP60)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex4.SharedWith) != 1 || ex4.SharedWith[0] != 2 {
		t.Fatalf("late variant sharing = %v, want the newest family set's member [2]", ex4.SharedWith)
	}
	more := catEvents(53, 80, 7)
	applyBatches(t, more, 16, rec.ApplyBatch)
	if err := rec.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []QueryID{1, 2, 3} {
		if _, err := rec.Result(id); err != nil {
			t.Fatal(err)
		}
	}
	// The retroactive joiner reads the full trace, v1-era history included.
	ref, err := serve.ForQuery(mustParse(t, sqlVWAP60), []string{"sym"}, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := ref.ApplyBatch(more); err != nil {
		t.Fatal(err)
	}
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, err := rec.Result(id4); err != nil || got != ref.Result() {
		t.Fatalf("late variant recovered %v (%v), reference %v", got, err, ref.Result())
	}
}

// TestCatalogAggregateVariants pins aggregate-variant sharing: SUM, COUNT(*)
// and AVG over the same predicate run as three probe plans on ONE state set,
// each bit-identical in grouped form to a dedicated engine executor.
func TestCatalogAggregateVariants(t *testing.T) {
	const sqlCount = `SELECT COUNT(*) FROM bids b
WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	const sqlAvg = `SELECT AVG(b.price * b.volume) FROM bids b
WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	idSum, exSum, err := cat.Register(sqlVWAP)
	if err != nil {
		t.Fatal(err)
	}
	idCnt, exCnt, err := cat.Register(sqlCount)
	if err != nil {
		t.Fatal(err)
	}
	idAvg, exAvg, err := cat.Register(sqlAvg)
	if err != nil {
		t.Fatal(err)
	}
	if exCnt.StateKey != exSum.StateKey || exAvg.StateKey != exSum.StateKey {
		t.Fatalf("aggregate variants did not share state: %q / %q / %q",
			exSum.StateKey, exCnt.StateKey, exAvg.StateKey)
	}
	if exCnt.Probe != "count@0.75" || exAvg.Probe != "avg@0.75" {
		t.Fatalf("variant probes = %q / %q", exCnt.Probe, exAvg.Probe)
	}
	stats := cat.Stats()
	if stats[0].SetID != stats[1].SetID || stats[0].SetID != stats[2].SetID {
		t.Fatalf("aggregate variants occupy sets %d/%d/%d, want one set",
			stats[0].SetID, stats[1].SetID, stats[2].SetID)
	}

	events := catEvents(61, 500, 6)
	applyBatches(t, events, 32, cat.ApplyBatch)
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for id, sql := range map[QueryID]string{idSum: sqlVWAP, idCnt: sqlCount, idAvg: sqlAvg} {
		gotG, err := cat.ResultGrouped(id)
		if err != nil {
			t.Fatal(err)
		}
		wantG := engineGrouped(t, sql, events)
		if !groupsEqual(gotG, wantG) {
			t.Fatalf("query %d (%s) grouped results diverged from dedicated executors", id, sql[:20])
		}
	}
	// Ingest fans out once: one set, one application per batch.
	if n := cat.List()[0].IngestSets; n != 1 {
		t.Fatalf("IngestSets = %d, want 1", n)
	}
}

// engineGrouped evaluates sql per sym partition with dedicated engine
// executors — the ground truth grouped result for any aggregate, including
// top-level AVG (which the partitioned serving layer cannot run directly).
func engineGrouped(t *testing.T, sql string, events []engine.Event) []engine.GroupResult {
	t.Helper()
	q := mustParse(t, sql)
	execs := map[float64]engine.Executor{}
	var keys []float64
	for _, e := range events {
		k := e.Tuple["sym"]
		ex, ok := execs[k]
		if !ok {
			var err error
			ex, err = engine.New(q)
			if err != nil {
				t.Fatal(err)
			}
			execs[k] = ex
			keys = append(keys, k)
		}
		ex.Apply(e)
	}
	sort.Float64s(keys)
	out := make([]engine.GroupResult, 0, len(execs))
	for _, k := range keys {
		out = append(out, engine.GroupResult{Key: []float64{k}, Value: execs[k].Result()})
	}
	return out
}

// TestCatalogFilteredVariants pins filtered-variant sharing: a query carrying
// one extra bare partition-column conjunct joins the unfiltered query's state
// set, the conjunct becoming a residual probe-time gate.
func TestCatalogFilteredVariants(t *testing.T) {
	const sqlFiltered = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE b.sym > 2
AND 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	idBase, exBase, err := cat.Register(sqlVWAP)
	if err != nil {
		t.Fatal(err)
	}
	idFil, exFil, err := cat.Register(sqlFiltered)
	if err != nil {
		t.Fatal(err)
	}
	if exFil.StateKey != exBase.StateKey {
		t.Fatalf("filtered variant did not share state: %q vs %q", exFil.StateKey, exBase.StateKey)
	}
	if exFil.Residual != "sym > 2" || exFil.Probe != "sum@0.75 | sym > 2" {
		t.Fatalf("filtered variant split = probe %q residual %q", exFil.Probe, exFil.Residual)
	}
	if len(exFil.SharedWith) != 1 || exFil.SharedWith[0] != idBase {
		t.Fatalf("filtered variant sharing = %v", exFil.SharedWith)
	}

	events := catEvents(67, 500, 6)
	applyBatches(t, events, 32, cat.ApplyBatch)
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}
	// Bit-identical to a dedicated service running the filtered query whole.
	ref, err := serve.ForQuery(mustParse(t, sqlFiltered), []string{"sym"}, serve.Options{Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, err := cat.Result(idFil); err != nil || got != ref.Result() {
		t.Fatalf("filtered lane reads %v (%v), dedicated service %v", got, err, ref.Result())
	}
	gotG, err := cat.ResultGrouped(idFil)
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(gotG, ref.ResultGrouped()) {
		t.Fatal("filtered lane grouped results diverged from dedicated service")
	}
	if _, err := cat.Result(idBase); err != nil {
		t.Fatal(err)
	}
}

// TestCatalogForkAttachRecover pins the checkpoint-fork join path: a late
// variant attaching to a durable ingested set forks the set's live state as
// a snapshot, and recovery restores the joined set from that fork — without
// replaying the family's earlier WAL records — bit-identically.
func TestCatalogForkAttachRecover(t *testing.T) {
	dir := t.TempDir()
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 2, BatchSize: 16, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := cat.Register(sqlVWAP)
	if err != nil {
		t.Fatal(err)
	}
	events := catEvents(71, 600, 6)
	pre, post := events[:400], events[400:]
	applyBatches(t, pre, 40, cat.ApplyBatch)

	// The late joiner arrives mid-history: its attach must fork the set.
	id2, ex2, err := cat.Register(sqlVWAP90)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.SharedWith) != 1 || ex2.SharedWith[0] != id1 {
		t.Fatalf("late joiner sharing = %v", ex2.SharedWith)
	}
	if ex2.Since == 0 {
		t.Fatal("late joiner's set Since still 0: the attach did not advance past the fork")
	}
	forks, err := filepath.Glob(filepath.Join(dir, "g1", "s*-f*"))
	if err != nil || len(forks) != 1 {
		t.Fatalf("fork snapshot dirs = %v (%v), want exactly one", forks, err)
	}
	applyBatches(t, post, 40, cat.ApplyBatch)
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}
	want1, err := cat.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := cat.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	crash := crashCopy(t, dir)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(Options{Dir: crash, Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for id, want := range map[QueryID]float64{id1: want1, id2: want2} {
		if got, err := rec.Result(id); err != nil || got != want {
			t.Fatalf("query %d recovered %v (%v), want %v", id, got, err, want)
		}
	}
	// Both lanes still equal dedicated services over the full trace.
	for id, sql := range map[QueryID]string{id1: sqlVWAP, id2: sqlVWAP90} {
		ref, err := serve.ForQuery(mustParse(t, sql), []string{"sym"}, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyBatch(events); err != nil {
			t.Fatal(err)
		}
		if err := ref.Drain(); err != nil {
			t.Fatal(err)
		}
		if got, _ := rec.Result(id); got != ref.Result() {
			t.Fatalf("query %d: recovered %v, dedicated %v", id, got, ref.Result())
		}
		ref.Close()
	}
}

// TestCatalogRotationForkReuse pins the rotation fast path: when a set's
// fork snapshot already reflects every WAL record, Checkpoint carries it
// into the next generation with checkpoint.Fork (a byte clone) instead of
// re-serializing, and the rotated directory still recovers bit-identically.
func TestCatalogRotationForkReuse(t *testing.T) {
	dir := t.TempDir()
	cat, err := New(Options{PartitionBy: []string{"sym"}, BatchSize: 16, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cat.Register(sqlVWAP); err != nil {
		t.Fatal(err)
	}
	events := catEvents(73, 300, 5)
	applyBatches(t, events, 30, cat.ApplyBatch)
	// Attach forks at the current record index; no further ingest, so the
	// following rotation can clone the fork instead of snapshotting again.
	id2, _, err := cat.Register(sqlVWAP90)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want, err := cat.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	crash := crashCopy(t, dir)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(Options{Dir: crash})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got, err := rec.Result(id2); err != nil || got != want {
		t.Fatalf("recovered %v (%v), want %v", got, err, want)
	}
}
