package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// sqlVWAP60 is a third threshold constant over sqlVWAP's predicate
// structure, so the fuzz mixes can build three-lane families. The remaining
// constants are sqlVWAP's other probe-plan variants: a COUNT(*) and an AVG
// over the same predicate (aggregate-variant lanes on one state set) and a
// copy carrying one extra bare partition-column conjunct (a residual
// probe-time gate — the fuzzer partitions by broker).
const (
	sqlVWAP60 = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE 0.6 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	sqlCountVWAP = `SELECT COUNT(*) FROM bids b
WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	sqlAvgVWAP = `SELECT AVG(b.price * b.volume) FROM bids b
WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	sqlResVWAP = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE b.broker > 2
AND 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
)

// fuzzSets are the registration mixes the differential fuzzer can pick from.
// Each mix exercises a different sharing topology: exact duplicates (one
// shared set), constant variants (one set, one fan lane per constant),
// aggregate variants (SUM/COUNT/AVG probe plans on one state set), filtered
// variants (residual probe gates), strategy mixes, and — in the 16-query
// entry — the full acceptance-criterion load.
var fuzzSets = [][]string{
	{sqlVWAP},
	{sqlVWAP, sqlVWAP2},                   // one shared set (exact)
	{sqlVWAP, sqlVWAP90},                  // constant variants: one family set, two lanes
	{sqlVWAP, sqlEq, sqlNested},           // three strategies
	{sqlEq, sqlEq, sqlVWAP, sqlNested},    // shared PAI set
	{sqlNested, sqlVWAP2, sqlVWAP, sqlEq}, // general + shared rpai
	{
		sqlVWAP, sqlVWAP2, sqlVWAP90, sqlEq, sqlNested,
		sqlVWAP, sqlEq, sqlVWAP90, sqlNested, sqlVWAP2,
		sqlVWAP, sqlVWAP90, sqlEq, sqlNested, sqlVWAP, sqlEq,
	},
	{sqlVWAP, sqlVWAP90, sqlVWAP60},                            // three-lane family
	{sqlVWAP, sqlVWAP2, sqlVWAP90, sqlVWAP60},                  // exact duplicate + family in one set
	{sqlVWAP, sqlCountVWAP, sqlAvgVWAP},                        // aggregate variants: one set, three probe kinds
	{sqlVWAP, sqlResVWAP},                                      // filtered variant: residual probe gate
	{sqlAvgVWAP, sqlVWAP90, sqlCountVWAP, sqlResVWAP, sqlVWAP}, // AVG founds the set; every lane kind joins
}

// fuzzLateSets are mid-ingest registration waves. A late variant joins the
// live family set retroactively — on durable catalogs via a checkpoint fork
// of the set's state — and inherits the family's entire history, so its
// independent reference must replay that history before the comparison.
var fuzzLateSets = [][]string{
	nil,
	{sqlVWAP90},                // late constant variant joins the live family
	{sqlVWAP, sqlVWAP60},       // late pair: exact joiner + new lane in one wave
	{sqlEq, sqlVWAP90},         // strategy stranger + family joiner
	{sqlAvgVWAP, sqlCountVWAP}, // late aggregate variants fork the family state
	{sqlResVWAP},               // late filtered variant: residual gate on inherited state
}

// fuzzLateAt and fuzzChurnAt are the event counts at which the late
// registration wave and the unregister churn trigger (batch-aligned by an
// explicit flush, as the live catalog requires).
const (
	fuzzLateAt  = 6
	fuzzChurnAt = 12
)

// fuzzRef is one registered query's independent ground truth: a dedicated
// single-query service (or pair of them, for AVG) fed the same batches as
// the catalog.
type fuzzRef interface {
	ApplyBatch([]engine.Event) error
	Drain() error
	Result() float64
	ResultGrouped() []engine.GroupResult
	Close() error
}

// avgRef serves a top-level AVG query — which a partitioned service cannot
// run directly, averages not being sum-decomposable — as a SUM service and a
// COUNT service over the same predicate, finished by their quotient at every
// read. This is exactly the raw pair the catalog's AVG probe lane carries,
// so the two must stay bit-identical.
type avgRef struct{ sum, cnt *serve.Service[engine.Event] }

func (r *avgRef) ApplyBatch(b []engine.Event) error {
	if err := r.sum.ApplyBatch(b); err != nil {
		return err
	}
	return r.cnt.ApplyBatch(b)
}

func (r *avgRef) Drain() error {
	if err := r.sum.Drain(); err != nil {
		return err
	}
	return r.cnt.Drain()
}

func (r *avgRef) Result() float64 { return avgQuotient(r.sum.Result(), r.cnt.Result()) }

func (r *avgRef) ResultGrouped() []engine.GroupResult {
	sums, cnts := r.sum.ResultGrouped(), r.cnt.ResultGrouped()
	if len(sums) != len(cnts) {
		return nil // impossible for identical feeds; nil forces the comparison to fail loudly
	}
	out := make([]engine.GroupResult, len(sums))
	for i := range sums {
		out[i] = engine.GroupResult{Key: sums[i].Key, Value: avgQuotient(sums[i].Value, cnts[i].Value)}
	}
	return out
}

func (r *avgRef) Close() error {
	err := r.sum.Close()
	if cerr := r.cnt.Close(); err == nil {
		err = cerr
	}
	return err
}

// avgQuotient finishes an AVG's raw (sum, count) pair the way the engine
// does: 0 over an empty qualifying set.
func avgQuotient(sum, cnt float64) float64 {
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}

// newFuzzRef builds a query's independent reference service(s).
func newFuzzRef(t *testing.T, sql string, opt serve.Options) fuzzRef {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.Outer != query.Avg {
		svc, err := serve.ForQuery(q, []string{"broker"}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	q.Outer = query.Sum
	sum, err := serve.ForQuery(q, []string{"broker"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	qc, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	qc.Outer = query.Count
	qc.Agg = query.Const(1) // COUNT(*)'s term: counts the qualifying tuples
	cnt, err := serve.ForQuery(qc, []string{"broker"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return &avgRef{sum: sum, cnt: cnt}
}

// FuzzCatalogDifferential is the catalog-level differential fuzzer: a
// catalog of N registered queries fed one shared event stream must be
// bit-identical — scalar and grouped, after every batch — to N independent
// single-query services fed the same batches. The input reuses the
// FuzzEngineDifferential trace layout (shape byte, 8-byte seed, 3-byte
// (op,b1,b2) event records); the shape byte selects the registration mix,
// bytes 1-2 pick shard count and batch boundaries, byte 3 selects a
// mid-ingest registration wave, and byte 4 packs unregister churn (low bits
// arm it, high bits pick the victim) plus a durable bit that ends the run
// with a crash-copy recovery compared against the same references.
//
// Late waves pin the retroactive-join contract: a mid-stream registration
// joins its family's live state set (forking its checkpoint when durable)
// and inherits the set's history, so its reference replays every batch from
// the set's founding epoch (Explain.StateSince) before comparing. One corpus
// therefore walks sharing topologies — exact, constant-variant,
// aggregate-variant, filtered-variant — shard counts, insert/delete traces,
// register/unregister churn, checkpoint forks, and crash/recovery at once.
//
// Run with `go test -fuzz FuzzCatalogDifferential ./internal/catalog`; the
// committed corpus under testdata/fuzz executes under plain `go test`.
func FuzzCatalogDifferential(f *testing.F) {
	for _, seed := range fuzzSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		sqls := fuzzSets[int(data[0])%len(fuzzSets)]
		shards := int(data[1])%3 + 1
		batchSize := int(data[2])%7 + 1
		late := fuzzLateSets[int(data[3])%len(fuzzLateSets)]
		churn := data[4]&3 != 0
		durable := data[4]&4 != 0
		victimPick := int(data[4] >> 3)

		opt := Options{PartitionBy: []string{"broker"}, Shards: shards, BatchSize: 8}
		if durable {
			opt.Dir = filepath.Join(t.TempDir(), "cat")
		}
		cat, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer cat.Close()
		refOpt := serve.Options{Shards: shards, BatchSize: 8}
		var ids []QueryID
		var indep []fuzzRef
		var flushed [][]engine.Event
		register := func(sql string) {
			id, ex, err := cat.Register(sql)
			if err != nil {
				t.Fatalf("register %q: %v", sql, err)
			}
			ref := newFuzzRef(t, sql, refOpt)
			// A joiner inherits its set's state retroactively: the set
			// reflects every batch applied since its founding epoch, so the
			// fresh reference replays that history before the first compare.
			if n := int(ex.StateSince); n < len(flushed) {
				for _, b := range flushed[n:] {
					if err := ref.ApplyBatch(b); err != nil {
						t.Fatal(err)
					}
				}
			}
			ids = append(ids, id)
			indep = append(indep, ref)
		}
		for _, sql := range sqls {
			register(sql)
		}
		defer func() {
			for _, svc := range indep {
				svc.Close()
			}
		}()

		var live []query.Tuple
		var batch []engine.Event
		events := 0
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if err := cat.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			for _, svc := range indep {
				if err := svc.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
			}
			flushed = append(flushed, append([]engine.Event(nil), batch...))
			batch = batch[:0]
			if err := cat.DrainAll(); err != nil {
				t.Fatal(err)
			}
			for i, svc := range indep {
				if err := svc.Drain(); err != nil {
					t.Fatal(err)
				}
				got, err := cat.Result(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if want := svc.Result(); got != want {
					t.Fatalf("query %d after %d events: catalog %v, independent %v", i, events, got, want)
				}
				gotG, err := cat.ResultGrouped(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if !groupsEqual(gotG, svc.ResultGrouped()) {
					t.Fatalf("query %d after %d events: grouped results diverged", i, events)
				}
			}
		}
		for i := 9; i+2 < len(data) && events < 120; i += 3 {
			op, b1, b2 := data[i], data[i+1], data[i+2]
			var e engine.Event
			if op%4 == 0 && len(live) > 0 {
				j := (int(b1)<<8 | int(b2)) % len(live)
				e = engine.Delete(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				tup := query.Tuple{
					"price":  float64(b1%40 + 1),
					"volume": float64(b2%30 + 1),
					"a":      float64(b1%10 + 1),
					"b":      float64(b2%8 + 1),
					"broker": float64((b1^b2)%5 + 1),
				}
				live = append(live, tup)
				e = engine.Insert(tup)
			}
			batch = append(batch, e)
			events++
			if len(batch) >= batchSize {
				flush()
			}
			if late != nil && events >= fuzzLateAt {
				// Mid-ingest wave: flush the partial batch so the catalog's
				// batch count matches the flushed history, then register. On a
				// durable catalog a family joiner forks the set's checkpoint;
				// register() replays the inherited history into its reference.
				flush()
				for _, sql := range late {
					register(sql)
				}
				late = nil
				if durable {
					// Rotate mid-stream so the recovery below crosses a
					// checkpoint holding family entries, probe lanes, and
					// freshly forked snapshots.
					if err := cat.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if churn && events >= fuzzChurnAt && len(ids) > 1 {
				// Unregister one member mid-ingest; survivors (co-tenants of
				// its set included) must keep serving bit-identically.
				flush()
				v := victimPick % len(ids)
				if err := cat.Unregister(ids[v]); err != nil {
					t.Fatal(err)
				}
				indep[v].Close()
				ids = append(ids[:v], ids[v+1:]...)
				indep = append(indep[:v], indep[v+1:]...)
				churn = false
			}
		}
		flush()

		if durable {
			// Crash-copy the directory and recover: every surviving query must
			// read back bit-identically to its independent reference.
			dir := crashCopy(t, opt.Dir)
			rec, err := Recover(Options{Dir: dir, Shards: shards, BatchSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if err := rec.DrainAll(); err != nil {
				t.Fatal(err)
			}
			for i, svc := range indep {
				got, err := rec.Result(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if want := svc.Result(); got != want {
					t.Fatalf("query %d recovered %v, independent %v", i, got, want)
				}
				gotG, err := rec.ResultGrouped(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if !groupsEqual(gotG, svc.ResultGrouped()) {
					t.Fatalf("query %d: grouped results diverged after recovery", i)
				}
			}
		}
	})
}

// fuzzSeedInputs is the committed seed corpus: one entry per registration
// mix over a short mixed insert/delete trace, plus lifecycle entries that
// arm late joiners (constant, aggregate, and filtered variants), unregister
// churn, checkpoint forks, and the durable crash/recovery path, so plain
// `go test` exercises every sharing topology and lifecycle.
func fuzzSeedInputs() [][]byte {
	trace := []byte{
		1, 5, 9, 1, 5, 3, 1, 17, 28, 1, 5, 9, 0, 0, 1, 1, 200, 100,
		1, 39, 29, 0, 0, 0, 1, 5, 9, 1, 12, 12, 0, 0, 2, 1, 1, 1,
	}
	long := append(append([]byte{}, trace...), trace...)
	var out [][]byte
	for shape := byte(0); shape < byte(len(fuzzSets)); shape++ {
		out = append(out, append([]byte{shape, shape + 1, 3, 0, 0, 0, 0, 0, 77}, trace...))
	}
	// Lifecycle seeds: header bytes are {shape, shards, batch, late,
	// churn|durable|victim<<3}; the longer trace reaches the churn threshold.
	for _, hdr := range [][]byte{
		{2, 2, 3, 1, 0},             // live family + late constant variant
		{2, 2, 4, 2, 1 | 1<<3},      // family forming mid-stream, then churn
		{7, 1, 3, 0, 1},             // three-lane family, founder unregisters
		{7, 2, 5, 3, 4},             // three-lane family, crash + recover
		{8, 2, 3, 1, 1 | 4 | 2<<3},  // exact+family set: churn and recovery
		{6, 3, 5, 2, 1 | 4 | 11<<3}, // 16-query mix with every lifecycle arm
		{9, 2, 3, 4, 0},             // aggregate variants + late AVG/COUNT joiners
		{9, 1, 4, 4, 4},             // same wave on a durable catalog: fork + recover
		{10, 2, 3, 5, 0},            // filtered variant + late residual joiner
		{10, 2, 5, 5, 1 | 4},        // late residual joiner with churn and recovery
		{11, 3, 3, 4, 1 | 4 | 2<<3}, // AVG-founded mix: late wave, churn, recovery
	} {
		out = append(out, append(append(append([]byte{}, hdr...), 0, 0, 0, 77), long...))
	}
	return out
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; run with
// WRITE_FUZZ_CORPUS=1 after changing the seed set; skipped otherwise.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCatalogDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-mix-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
