package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// fuzzSets are the registration mixes the differential fuzzer can pick from.
// Each mix exercises a different sharing topology: duplicates (shared sets),
// constant variants (same predicate signature, separate sets), strategy
// mixes, and — in the last entry — the full 16-query acceptance-criterion
// load.
var fuzzSets = [][]string{
	{sqlVWAP},
	{sqlVWAP, sqlVWAP2},                   // one shared set
	{sqlVWAP, sqlVWAP90},                  // same signature, two sets
	{sqlVWAP, sqlEq, sqlNested},           // three strategies
	{sqlEq, sqlEq, sqlVWAP, sqlNested},    // shared PAI set
	{sqlNested, sqlVWAP2, sqlVWAP, sqlEq}, // general + shared rpai
	{
		sqlVWAP, sqlVWAP2, sqlVWAP90, sqlEq, sqlNested,
		sqlVWAP, sqlEq, sqlVWAP90, sqlNested, sqlVWAP2,
		sqlVWAP, sqlVWAP90, sqlEq, sqlNested, sqlVWAP, sqlEq,
	},
}

// FuzzCatalogDifferential is the catalog-level differential fuzzer: a
// catalog of N registered queries fed one shared event stream must be
// bit-identical — scalar and grouped, after every batch — to N independent
// single-query services fed the same batches. The input reuses the
// FuzzEngineDifferential trace layout (shape byte, 8-byte seed, 3-byte
// (op,b1,b2) event records); the shape byte selects the registration mix and
// the seed's low bits pick shard count and batch boundaries, so one corpus
// walks sharing topologies, shard counts, and insert/delete traces at once.
//
// Run with `go test -fuzz FuzzCatalogDifferential ./internal/catalog`; the
// committed corpus under testdata/fuzz executes under plain `go test`.
func FuzzCatalogDifferential(f *testing.F) {
	for _, seed := range fuzzSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		sqls := fuzzSets[int(data[0])%len(fuzzSets)]
		shards := int(data[1])%3 + 1
		batchSize := int(data[2])%7 + 1

		cat, err := New(Options{PartitionBy: []string{"broker"}, Shards: shards, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer cat.Close()
		ids := make([]QueryID, len(sqls))
		indep := make([]*serve.Service[engine.Event], len(sqls))
		for i, sql := range sqls {
			if ids[i], _, err = cat.Register(sql); err != nil {
				t.Fatalf("register %q: %v", sql, err)
			}
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			svc, err := serve.ForQuery(q, []string{"broker"}, serve.Options{Shards: shards, BatchSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			indep[i] = svc
			defer svc.Close()
		}

		var live []query.Tuple
		var batch []engine.Event
		events := 0
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if err := cat.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			for _, svc := range indep {
				if err := svc.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
			}
			batch = batch[:0]
			if err := cat.DrainAll(); err != nil {
				t.Fatal(err)
			}
			for i, svc := range indep {
				if err := svc.Drain(); err != nil {
					t.Fatal(err)
				}
				got, err := cat.Result(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if want := svc.Result(); got != want {
					t.Fatalf("query %d after %d events: catalog %v, independent %v", i, events, got, want)
				}
				gotG, err := cat.ResultGrouped(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if !groupsEqual(gotG, svc.ResultGrouped()) {
					t.Fatalf("query %d after %d events: grouped results diverged", i, events)
				}
			}
		}
		for i := 9; i+2 < len(data) && events < 120; i += 3 {
			op, b1, b2 := data[i], data[i+1], data[i+2]
			var e engine.Event
			if op%4 == 0 && len(live) > 0 {
				j := (int(b1)<<8 | int(b2)) % len(live)
				e = engine.Delete(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				tup := query.Tuple{
					"price":  float64(b1%40 + 1),
					"volume": float64(b2%30 + 1),
					"a":      float64(b1%10 + 1),
					"b":      float64(b2%8 + 1),
					"broker": float64((b1^b2)%5 + 1),
				}
				live = append(live, tup)
				e = engine.Insert(tup)
			}
			batch = append(batch, e)
			events++
			if len(batch) >= batchSize {
				flush()
			}
		}
		flush()
	})
}

// fuzzSeedInputs is the committed seed corpus: one entry per registration
// mix over a short mixed insert/delete trace, so plain `go test` exercises
// every sharing topology.
func fuzzSeedInputs() [][]byte {
	trace := []byte{
		1, 5, 9, 1, 5, 3, 1, 17, 28, 1, 5, 9, 0, 0, 1, 1, 200, 100,
		1, 39, 29, 0, 0, 0, 1, 5, 9, 1, 12, 12, 0, 0, 2, 1, 1, 1,
	}
	var out [][]byte
	for shape := byte(0); shape < byte(len(fuzzSets)); shape++ {
		out = append(out, append([]byte{shape, shape + 1, 3, 0, 0, 0, 0, 0, 77}, trace...))
	}
	return out
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; run with
// WRITE_FUZZ_CORPUS=1 after changing the seed set; skipped otherwise.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCatalogDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-mix-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
