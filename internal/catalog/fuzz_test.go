package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// sqlVWAP60 is a third threshold constant over sqlVWAP's predicate
// structure, so the fuzz mixes can build three-lane families.
const sqlVWAP60 = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE 0.6 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`

// fuzzSets are the registration mixes the differential fuzzer can pick from.
// Each mix exercises a different sharing topology: exact duplicates (one
// shared set), constant variants (same predicate family, one set with one
// fan lane per constant), strategy mixes, and — in the 16-query entry — the
// full acceptance-criterion load.
var fuzzSets = [][]string{
	{sqlVWAP},
	{sqlVWAP, sqlVWAP2},                   // one shared set (exact)
	{sqlVWAP, sqlVWAP90},                  // constant variants: one family set, two lanes
	{sqlVWAP, sqlEq, sqlNested},           // three strategies
	{sqlEq, sqlEq, sqlVWAP, sqlNested},    // shared PAI set
	{sqlNested, sqlVWAP2, sqlVWAP, sqlEq}, // general + shared rpai
	{
		sqlVWAP, sqlVWAP2, sqlVWAP90, sqlEq, sqlNested,
		sqlVWAP, sqlEq, sqlVWAP90, sqlNested, sqlVWAP2,
		sqlVWAP, sqlVWAP90, sqlEq, sqlNested, sqlVWAP, sqlEq,
	},
	{sqlVWAP, sqlVWAP90, sqlVWAP60},           // three-lane family
	{sqlVWAP, sqlVWAP2, sqlVWAP90, sqlVWAP60}, // exact duplicate + family in one set
}

// fuzzLateSets are mid-ingest registration waves. A late constant variant
// cannot join the (already ingested) family set, so it founds a fresh set
// whose `since` excludes the prefix — and when the wave itself holds two
// variants, the second joins the first mid-stream, installing fan lanes on a
// set that starts ingesting immediately.
var fuzzLateSets = [][]string{
	nil,
	{sqlVWAP90},          // late variant: own set despite the live family
	{sqlVWAP, sqlVWAP60}, // late pair: family forms mid-stream
	{sqlEq, sqlVWAP90},
}

// fuzzLateAt and fuzzChurnAt are the event counts at which the late
// registration wave and the unregister churn trigger (batch-aligned by an
// explicit flush, as the live catalog requires).
const (
	fuzzLateAt  = 6
	fuzzChurnAt = 12
)

// FuzzCatalogDifferential is the catalog-level differential fuzzer: a
// catalog of N registered queries fed one shared event stream must be
// bit-identical — scalar and grouped, after every batch — to N independent
// single-query services fed the same batches. The input reuses the
// FuzzEngineDifferential trace layout (shape byte, 8-byte seed, 3-byte
// (op,b1,b2) event records); the shape byte selects the registration mix,
// bytes 1-2 pick shard count and batch boundaries, byte 3 selects a
// mid-ingest registration wave (late family joiners get fresh sets with a
// later `since`), and byte 4 packs unregister churn (low bits arm it, high
// bits pick the victim) plus a durable bit that ends the run with a
// crash-copy recovery compared against the same references. One corpus
// therefore walks sharing topologies, shard counts, insert/delete traces,
// register/unregister churn, and crash/recovery at once.
//
// Run with `go test -fuzz FuzzCatalogDifferential ./internal/catalog`; the
// committed corpus under testdata/fuzz executes under plain `go test`.
func FuzzCatalogDifferential(f *testing.F) {
	for _, seed := range fuzzSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		sqls := fuzzSets[int(data[0])%len(fuzzSets)]
		shards := int(data[1])%3 + 1
		batchSize := int(data[2])%7 + 1
		late := fuzzLateSets[int(data[3])%len(fuzzLateSets)]
		churn := data[4]&3 != 0
		durable := data[4]&4 != 0
		victimPick := int(data[4] >> 3)

		opt := Options{PartitionBy: []string{"broker"}, Shards: shards, BatchSize: 8}
		if durable {
			opt.Dir = filepath.Join(t.TempDir(), "cat")
		}
		cat, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer cat.Close()
		var ids []QueryID
		var indep []*serve.Service[engine.Event]
		register := func(sql string) {
			id, _, err := cat.Register(sql)
			if err != nil {
				t.Fatalf("register %q: %v", sql, err)
			}
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			svc, err := serve.ForQuery(q, []string{"broker"}, serve.Options{Shards: shards, BatchSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			indep = append(indep, svc)
		}
		for _, sql := range sqls {
			register(sql)
		}
		defer func() {
			for _, svc := range indep {
				svc.Close()
			}
		}()

		var live []query.Tuple
		var batch []engine.Event
		events := 0
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if err := cat.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			for _, svc := range indep {
				if err := svc.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
			}
			batch = batch[:0]
			if err := cat.DrainAll(); err != nil {
				t.Fatal(err)
			}
			for i, svc := range indep {
				if err := svc.Drain(); err != nil {
					t.Fatal(err)
				}
				got, err := cat.Result(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if want := svc.Result(); got != want {
					t.Fatalf("query %d after %d events: catalog %v, independent %v", i, events, got, want)
				}
				gotG, err := cat.ResultGrouped(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if !groupsEqual(gotG, svc.ResultGrouped()) {
					t.Fatalf("query %d after %d events: grouped results diverged", i, events)
				}
			}
		}
		for i := 9; i+2 < len(data) && events < 120; i += 3 {
			op, b1, b2 := data[i], data[i+1], data[i+2]
			var e engine.Event
			if op%4 == 0 && len(live) > 0 {
				j := (int(b1)<<8 | int(b2)) % len(live)
				e = engine.Delete(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				tup := query.Tuple{
					"price":  float64(b1%40 + 1),
					"volume": float64(b2%30 + 1),
					"a":      float64(b1%10 + 1),
					"b":      float64(b2%8 + 1),
					"broker": float64((b1^b2)%5 + 1),
				}
				live = append(live, tup)
				e = engine.Insert(tup)
			}
			batch = append(batch, e)
			events++
			if len(batch) >= batchSize {
				flush()
			}
			if late != nil && events >= fuzzLateAt {
				// Mid-ingest wave: flush the partial batch so the catalog's
				// record count matches the references, then register. The late
				// services start empty, exactly like the late sets' `since`.
				flush()
				for _, sql := range late {
					register(sql)
				}
				late = nil
				if durable {
					// Rotate mid-stream so the recovery below crosses a
					// checkpoint holding family entries and late sets.
					if err := cat.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if churn && events >= fuzzChurnAt && len(ids) > 1 {
				// Unregister one member mid-ingest; survivors (co-tenants of
				// its set included) must keep serving bit-identically.
				flush()
				v := victimPick % len(ids)
				if err := cat.Unregister(ids[v]); err != nil {
					t.Fatal(err)
				}
				indep[v].Close()
				ids = append(ids[:v], ids[v+1:]...)
				indep = append(indep[:v], indep[v+1:]...)
				churn = false
			}
		}
		flush()

		if durable {
			// Crash-copy the directory and recover: every surviving query must
			// read back bit-identically to its independent reference.
			dir := crashCopy(t, opt.Dir)
			rec, err := Recover(Options{Dir: dir, Shards: shards, BatchSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if err := rec.DrainAll(); err != nil {
				t.Fatal(err)
			}
			for i, svc := range indep {
				got, err := rec.Result(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if want := svc.Result(); got != want {
					t.Fatalf("query %d recovered %v, independent %v", i, got, want)
				}
				gotG, err := rec.ResultGrouped(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if !groupsEqual(gotG, svc.ResultGrouped()) {
					t.Fatalf("query %d: grouped results diverged after recovery", i)
				}
			}
		}
	})
}

// fuzzSeedInputs is the committed seed corpus: one entry per registration
// mix over a short mixed insert/delete trace, plus family-focused entries
// that arm late joiners, unregister churn, and the durable crash/recovery
// path, so plain `go test` exercises every sharing topology and lifecycle.
func fuzzSeedInputs() [][]byte {
	trace := []byte{
		1, 5, 9, 1, 5, 3, 1, 17, 28, 1, 5, 9, 0, 0, 1, 1, 200, 100,
		1, 39, 29, 0, 0, 0, 1, 5, 9, 1, 12, 12, 0, 0, 2, 1, 1, 1,
	}
	long := append(append([]byte{}, trace...), trace...)
	var out [][]byte
	for shape := byte(0); shape < byte(len(fuzzSets)); shape++ {
		out = append(out, append([]byte{shape, shape + 1, 3, 0, 0, 0, 0, 0, 77}, trace...))
	}
	// Family lifecycle seeds: header bytes are {shape, shards, batch, late,
	// churn|durable|victim<<3}; the longer trace reaches the churn threshold.
	for _, hdr := range [][]byte{
		{2, 2, 3, 1, 0},             // live family + late variant set
		{2, 2, 4, 2, 1 | 1<<3},      // family forming mid-stream, then churn
		{7, 1, 3, 0, 1},             // three-lane family, founder unregisters
		{7, 2, 5, 3, 4},             // three-lane family, crash + recover
		{8, 2, 3, 1, 1 | 4 | 2<<3},  // exact+family set: churn and recovery
		{6, 3, 5, 2, 1 | 4 | 11<<3}, // 16-query mix with every lifecycle arm
	} {
		out = append(out, append(append(append([]byte{}, hdr...), 0, 0, 0, 77), long...))
	}
	return out
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; run with
// WRITE_FUZZ_CORPUS=1 after changing the seed set; skipped otherwise.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCatalogDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-mix-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
