package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rpai/internal/checkpoint"
	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// On-disk layout of a durable catalog directory (generation G):
//
//	CATALOG                 registration manifest (tmp+rename, CRC record)
//	g<G>-shard-0.wal        the shared ingest WAL: ONE record per applied batch
//	g<G>/s<setID>/          one standalone serve checkpoint per executor set
//	g<G>/s<setID>-f<R>/     a fork snapshot of the set, taken at WAL record R
//
// The CATALOG manifest maps every registered QueryID to its SQL, its
// executor-set ID, its probe plan, and `since` — the WAL record index the
// set's snapshot state is current through. Recovery re-registers everything
// from the manifest, restores each set from its snapshot directory, then
// replays the shared WAL: record i goes to every set with since <= i, which
// is exactly the fan-out the live catalog performed. A set registered after
// the last checkpoint has no snapshot directory and recovers from its WAL
// suffix alone.
//
// Fork snapshots are how a late joiner attaches durably: the set's live
// state is checkpointed under g<G>/s<setID>-f<R> (R = the record count at
// the join), and the manifest swap that commits the new member also advances
// the set's since to R — so recovery restores the joined set from the fork
// instead of replaying the family's earlier records. The record index in the
// directory name makes the fork inert until a manifest references it: a
// crash between the fork and the manifest swap recovers through the old
// manifest, which points at the old state, and the orphaned fork directory
// is swept with its generation at the next rotation.
//
// Checkpoint rotates generations in the crash-safe order the single-query
// layer established: drain and snapshot every set under g<G+1>/ (cloning a
// set's current fork snapshot with checkpoint.Fork instead of
// re-serializing, when one is current), create the g<G+1> WAL, swap the
// CATALOG manifest (the commit point), then delete generation G. A crash
// anywhere before the swap recovers from G; after it, from G+1.

const (
	// catalogName is the manifest file.
	catalogName = "CATALOG"
	// catalogMagic brands the manifest; catalogVersion the record format.
	// Version 3 records each entry's full probe plan (aggregate kind and
	// residual conjunct beyond version 2's threshold constant), the set's
	// founding SQL and founding record index, and the catalog's lifetime
	// batch counter. Version-2 manifests decode with SUM plans (all v2
	// sharing was threshold-only); version-1 manifests re-derive plans from
	// each entry's SQL at recovery.
	catalogMagic   = "RPCG"
	catalogVersion = 3
	// entryShared marks an entry whose query reads a probe lane of a shared
	// state set; its plan fields (constant, kind, residual) are meaningful.
	// In version-2 manifests the same bit meant threshold-family membership.
	entryShared = 1 << 0
	// entryResidual marks a version-3 entry whose probe plan carries a
	// residual partition-column conjunct.
	entryResidual = 1 << 1
	// maxManifestQueries bounds decode allocation for corrupt files.
	maxManifestQueries = 1 << 20
)

// durableState is the catalog's persistence handle.
type durableState struct {
	dir string
	gen uint64
	wal *checkpoint.WALWriter
}

// catEntry is one manifest line: the registration (id, sql), its set (setID,
// since, baseSQL, founded) and its probe plan (shared, spec). A version-1
// manifest leaves the plan zero with derive set, and recovery re-derives it
// from the SQL.
type catEntry struct {
	id      QueryID
	setID   uint64
	since   uint64
	sql     string
	baseSQL string
	founded uint64
	shared  bool
	spec    engine.ProbeSpec
	derive  bool
}

func walPath(dir string, gen uint64) string { return checkpoint.WALPath(dir, gen, 0) }

func setDir(dir string, gen, setID uint64) string {
	return filepath.Join(dir, fmt.Sprintf("g%d", gen), fmt.Sprintf("s%d", setID))
}

// forkDir names a set's fork snapshot taken at WAL record index rec. The
// index in the name keys the snapshot to the manifest state that references
// it, so a stale or orphaned fork can never be confused for the set's
// rotation snapshot.
func forkDir(dir string, gen, setID, rec uint64) string {
	return filepath.Join(dir, fmt.Sprintf("g%d", gen), fmt.Sprintf("s%d-f%d", setID, rec))
}

// initDurable creates a fresh durable catalog directory: generation-1 WAL
// plus an empty manifest. An existing manifest is rejected — recovering an
// existing directory is Recover's job, and silently truncating its WAL here
// would destroy it.
func (s *Service) initDurable() error {
	dir := s.opt.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, catalogName)); err == nil {
		return fmt.Errorf("catalog: %s already has a CATALOG manifest; use Recover", dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	const gen = 1
	wal, err := checkpoint.CreateWAL(walPath(dir, gen), checkpoint.Header{Gen: gen, Shard: 0, ShardCount: 1})
	if err != nil {
		return err
	}
	s.dur = &durableState{dir: dir, gen: gen, wal: wal}
	if err := s.writeManifestLocked(); err != nil {
		wal.Close()
		s.dur = nil
		return err
	}
	return nil
}

// appendWAL logs one batch as one record and flushes it to the OS. Callers
// hold ingestMu, so record order is application order.
func (s *Service) appendWAL(events []engine.Event) error {
	rec := encodeBatchRecord(nil, events)
	if err := s.dur.wal.Append(rec); err != nil {
		return err
	}
	return s.dur.wal.Flush()
}

// forkSetLocked checkpoints a set's live state as a fork snapshot at the
// current WAL record index, recording it in snapDir/snapAt. A snapshot
// already current (a previous joiner forked at this index, or the set just
// rotated and nothing arrived since) is reused as-is; a leftover directory
// from a failed attempt is replaced. Callers hold mu for write and commit
// the fork by writing a manifest whose since points at it.
func (s *Service) forkSetLocked(set *execSet) error {
	if set.snapDir != "" && set.snapAt == s.records {
		return nil
	}
	dst := forkDir(s.dur.dir, s.dur.gen, set.setID, s.records)
	if err := os.RemoveAll(dst); err != nil {
		return err
	}
	if err := set.svc.Drain(); err != nil {
		return err
	}
	if err := set.svc.Checkpoint(dst); err != nil {
		return err
	}
	set.snapDir, set.snapAt = dst, s.records
	return nil
}

// manifestEntriesLocked snapshots the registration table for persisting.
// Callers hold mu.
func (s *Service) manifestEntriesLocked() []catEntry {
	entries := make([]catEntry, 0, len(s.regs))
	for _, reg := range s.regs {
		entries = append(entries, catEntry{
			id: reg.id, setID: reg.set.setID, since: reg.set.since, sql: reg.sql,
			baseSQL: reg.set.baseSQL, founded: reg.set.founded,
			shared: reg.shared, spec: reg.spec,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	return entries
}

// writeManifestLocked persists the current registration table. Callers hold
// mu for write. appliedBase — the lifetime batch count before the current
// generation's WAL — is constant between rotations, so any manifest write
// within a generation records the same value.
func (s *Service) writeManifestLocked() error {
	return writeCatalogFile(s.dur.dir, s.dur.gen, uint64(s.nextID), s.nextSet,
		s.applied-s.records, s.opt.PartitionBy, s.manifestEntriesLocked())
}

// writeCatalogFile writes the CATALOG manifest: magic, then one CRC-framed
// record, installed by tmp+rename+sync so readers see the old manifest or
// the new one, never a torn mix.
func writeCatalogFile(dir string, gen, nextID, nextSet, appliedBase uint64, partitionBy []string, entries []catEntry) error {
	var rec bytes.Buffer
	e := checkpoint.NewEncoder(&rec)
	e.U32(catalogVersion)
	e.U64(gen)
	e.U64(nextID)
	e.U64(nextSet)
	e.U64(appliedBase)
	e.U32(uint32(len(partitionBy)))
	for _, c := range partitionBy {
		e.Str(c)
	}
	e.U32(uint32(len(entries)))
	for _, ent := range entries {
		e.U64(uint64(ent.id))
		e.U64(ent.setID)
		e.U64(ent.since)
		e.Str(ent.sql)
		var flags uint8
		if ent.shared {
			flags |= entryShared
		}
		if ent.spec.Residual {
			flags |= entryResidual
		}
		e.U8(flags)
		e.F64(ent.spec.Const)
		e.Str(ent.baseSQL)
		e.U8(uint8(ent.spec.Kind))
		e.Str(ent.spec.ResidualCol)
		e.U8(uint8(ent.spec.ResidualOp))
		e.F64(ent.spec.ResidualVal)
		e.U64(ent.founded)
	}
	if err := e.Err(); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(catalogMagic)
	if err := checkpoint.WriteRecord(&buf, rec.Bytes()); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, catalogName+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, catalogName)); err != nil {
		return err
	}
	return catalogSyncDir(dir)
}

// readCatalogFile loads and validates the CATALOG manifest.
func readCatalogFile(dir string) (gen, nextID, nextSet, appliedBase uint64, partitionBy []string, entries []catEntry, err error) {
	b, err := os.ReadFile(filepath.Join(dir, catalogName))
	if err != nil {
		return 0, 0, 0, 0, nil, nil, err
	}
	if len(b) < len(catalogMagic) || string(b[:len(catalogMagic)]) != catalogMagic {
		return 0, 0, 0, 0, nil, nil, fmt.Errorf("catalog: bad CATALOG magic in %s", dir)
	}
	rec, err := checkpoint.ReadRecord(bytes.NewReader(b[len(catalogMagic):]))
	if err != nil {
		return 0, 0, 0, 0, nil, nil, fmt.Errorf("catalog: CATALOG manifest: %w", err)
	}
	d := checkpoint.NewDecoder(bytes.NewReader(rec))
	v := d.U32()
	if d.Err() == nil && (v < 1 || v > catalogVersion) {
		return 0, 0, 0, 0, nil, nil, fmt.Errorf("catalog: unsupported CATALOG version %d", v)
	}
	gen = d.U64()
	nextID = d.U64()
	nextSet = d.U64()
	if v >= 3 {
		appliedBase = d.U64()
	}
	np := d.U32()
	if d.Err() == nil && np > maxManifestQueries {
		return 0, 0, 0, 0, nil, nil, fmt.Errorf("catalog: implausible partition-column count %d", np)
	}
	for i := uint32(0); i < np && d.Err() == nil; i++ {
		partitionBy = append(partitionBy, d.Str())
	}
	nq := d.U32()
	if d.Err() == nil && nq > maxManifestQueries {
		return 0, 0, 0, 0, nil, nil, fmt.Errorf("catalog: implausible query count %d", nq)
	}
	for i := uint32(0); i < nq && d.Err() == nil; i++ {
		ent := catEntry{
			id:    QueryID(d.U64()),
			setID: d.U64(),
			since: d.U64(),
			sql:   d.Str(),
		}
		switch {
		case v >= 3:
			flags := d.U8()
			ent.spec.Const = d.F64()
			ent.baseSQL = d.Str()
			ent.spec.Kind = query.AggKind(d.U8())
			ent.spec.ResidualCol = d.Str()
			ent.spec.ResidualOp = query.CmpOp(d.U8())
			ent.spec.ResidualVal = d.F64()
			ent.founded = d.U64()
			ent.shared = flags&entryShared != 0
			ent.spec.Residual = flags&entryResidual != 0
			if !ent.spec.Residual {
				ent.spec.ResidualCol, ent.spec.ResidualOp, ent.spec.ResidualVal = "", 0, 0
			}
		case v == 2:
			// Threshold-family era: every shared plan was a SUM lane at the
			// persisted constant. The founding SQL was not recorded; the
			// lowest surviving member stands in, and founded is approximated
			// by since (exact for any catalog that had not rotated, and never
			// later than the truth).
			flags := d.U8()
			ent.spec.Const = d.F64()
			ent.shared = flags&entryShared != 0
			ent.spec.Kind = query.Sum
			ent.founded = ent.since
		default:
			// Pre-family manifest: plans are re-derived from the SQL during
			// recovery.
			ent.derive = true
			ent.founded = ent.since
		}
		entries = append(entries, ent)
	}
	if err := d.Err(); err != nil {
		return 0, 0, 0, 0, nil, nil, fmt.Errorf("catalog: CATALOG manifest: %w", err)
	}
	return gen, nextID, nextSet, appliedBase, partitionBy, entries, nil
}

func catalogSyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Checkpoint rotates the catalog to a new generation: every executor set is
// drained and snapshotted, a fresh WAL starts, and the manifest swap commits
// the rotation (the old generation is removed afterwards). Replay cost after
// a crash resets to zero.
func (s *Service) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.dur == nil {
		return errors.New("catalog: Checkpoint requires Options.Dir")
	}
	return s.rotateLocked()
}

// rotateLocked performs the generation rotation. Callers hold mu for write
// (so no ingest or registration is in flight). The recovery path calls it
// with no WAL writer open (s.dur.wal nil). A set whose newest snapshot —
// typically a late joiner's fork — already reflects every WAL record is
// carried forward by cloning that snapshot (checkpoint.Fork) instead of
// re-serializing the live executors.
func (s *Service) rotateLocked() error {
	dir, oldGen := s.dur.dir, s.dur.gen
	newGen := oldGen + 1
	// A failed earlier rotation may have left a partial next generation;
	// nothing references it (its manifest swap never happened), so clear it.
	if err := os.RemoveAll(filepath.Join(dir, fmt.Sprintf("g%d", newGen))); err != nil {
		return err
	}
	sets := s.distinctSetsLocked()
	for _, set := range sets {
		if err := set.svc.Drain(); err != nil {
			return err
		}
		dst := setDir(dir, newGen, set.setID)
		if set.snapDir != "" && set.snapAt == s.records && set.since == s.records {
			if err := checkpoint.Fork(set.snapDir, dst); err != nil {
				return err
			}
		} else if err := set.svc.Checkpoint(dst); err != nil {
			return err
		}
	}
	newWAL, err := checkpoint.CreateWAL(walPath(dir, newGen), checkpoint.Header{Gen: newGen, Shard: 0, ShardCount: 1})
	if err != nil {
		return err
	}
	// The manifest swap is the commit point: all sets are current through the
	// (empty) new WAL, so every since is 0, and the lifetime batch counter
	// folds the rotated-away records into appliedBase.
	entries := s.manifestEntriesLocked()
	for i := range entries {
		entries[i].since = 0
	}
	if err := writeCatalogFile(dir, newGen, uint64(s.nextID), s.nextSet, s.applied, s.opt.PartitionBy, entries); err != nil {
		newWAL.Close()
		os.Remove(walPath(dir, newGen))
		os.RemoveAll(filepath.Join(dir, fmt.Sprintf("g%d", newGen)))
		return err
	}
	if s.dur.wal != nil {
		s.dur.wal.Close()
	}
	s.dur.wal = newWAL
	s.dur.gen = newGen
	s.records = 0
	for _, set := range sets {
		set.since = 0
		set.snapDir = setDir(dir, newGen, set.setID)
		set.snapAt = 0
	}
	os.Remove(walPath(dir, oldGen))
	os.RemoveAll(filepath.Join(dir, fmt.Sprintf("g%d", oldGen)))
	return nil
}

// Recover rebuilds a durable catalog from its directory: registrations come
// back from the CATALOG manifest, each executor set restores from its
// snapshot (a fork snapshot at the set's since when one exists, else the
// rotation snapshot), and the shared WAL replays into every set that had not
// yet seen its records. Recovery ends with a generation rotation, so the
// next crash replays only what follows. opt.Dir names the directory;
// opt.PartitionBy, when set, must match the persisted columns.
func Recover(opt Options) (*Service, error) {
	if opt.Dir == "" {
		return nil, errors.New("catalog: Recover requires Options.Dir")
	}
	gen, nextID, nextSet, appliedBase, partitionBy, entries, err := readCatalogFile(opt.Dir)
	if err != nil {
		return nil, err
	}
	if len(opt.PartitionBy) > 0 && !equalStrings(opt.PartitionBy, partitionBy) {
		return nil, fmt.Errorf("catalog: partition columns %v do not match persisted %v", opt.PartitionBy, partitionBy)
	}
	opt.PartitionBy = partitionBy
	s := &Service{
		opt:      opt,
		regs:     make(map[QueryID]*registration),
		sets:     make(map[string]*execSet),
		states:   make(map[string]*execSet),
		baseKeys: make(map[string]*execSet),
		nextID:   QueryID(nextID),
		nextSet:  nextSet,
	}
	if s.nextID < 1 {
		s.nextID = 1
	}
	if s.nextSet < 1 {
		s.nextSet = 1
	}

	// Rebuild executor sets: group manifest entries by set, restore each set
	// from its snapshot directory when one exists.
	bySet := make(map[uint64][]catEntry)
	var setIDs []uint64
	for _, ent := range entries {
		if _, ok := bySet[ent.setID]; !ok {
			setIDs = append(setIDs, ent.setID)
		}
		bySet[ent.setID] = append(bySet[ent.setID], ent)
	}
	sort.Slice(setIDs, func(i, j int) bool { return setIDs[i] < setIDs[j] })
	closeAll := func() {
		for _, set := range s.sets {
			set.svc.Close()
		}
	}
	serveOpt := s.serveOptions()
	for _, sid := range setIDs {
		ents := bySet[sid]
		// Parse and plan every member: one set's members have distinct SQL
		// (same maintained state, different probe plans), so a per-entry plan
		// is required.
		qs := make([]*query.Query, len(ents))
		plans := make([]engine.Plan, len(ents))
		for i, ent := range ents {
			q, err := sqlparse.Parse(ent.sql)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("catalog: manifest query %d: %w", ent.id, err)
			}
			plan, err := engine.Describe(q)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("catalog: manifest query %d: %w", ent.id, err)
			}
			qs[i], plans[i] = q, plan
		}
		// The set's executors run its founder's query (version-3 manifests
		// record it; older manifests fall back to the lowest surviving member,
		// whose canonical form matched its set in those eras).
		baseSQL := ents[0].sql
		for _, ent := range ents {
			if ent.baseSQL != "" {
				baseSQL = ent.baseSQL
				break
			}
		}
		bq, err := sqlparse.Parse(baseSQL)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("catalog: set %d founding query: %w", sid, err)
		}
		exec, stateKey, baseKey, baseSpec, setShared := deriveState(bq, partitionBy)
		sd := setDir(opt.Dir, gen, sid)
		fd := forkDir(opt.Dir, gen, sid, ents[0].since)
		var svc *serve.Service[engine.Event]
		snapDir, snapAt := "", uint64(0)
		if _, statErr := os.Stat(fd); statErr == nil {
			// A late joiner forked this set at record `since`; the fork is the
			// newest committed state.
			svc, err = serve.RecoverForQuery(fd, exec, partitionBy, serveOpt)
			snapDir, snapAt = fd, ents[0].since
		} else if !errors.Is(statErr, os.ErrNotExist) {
			err = statErr
		} else if _, statErr := os.Stat(sd); statErr == nil {
			svc, err = serve.RecoverForQuery(sd, exec, partitionBy, serveOpt)
			snapDir, snapAt = sd, ents[0].since
		} else if errors.Is(statErr, os.ErrNotExist) {
			// Registered after the last checkpoint: state lives in the WAL
			// suffix alone.
			svc, err = serve.ForQuery(exec, partitionBy, serveOpt)
		} else {
			err = statErr
		}
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("catalog: recover set %d: %w", sid, err)
		}
		set := &execSet{setID: sid, canon: bq.String(), baseSQL: baseSQL, q: exec,
			stateKey: stateKey, baseKey: baseKey,
			refs: make(map[QueryID]struct{}), svc: svc,
			since: ents[0].since, founded: ents[0].founded,
			snapDir: snapDir, snapAt: snapAt}
		if setShared {
			set.lanes = make(map[engine.ProbeSpec]int)
			set.baseSpec = baseSpec
			set.baseSpec.Kind = exec.Outer
		}
		for i, ent := range ents {
			spec, shared := ent.spec, ent.shared
			if ent.derive {
				// Pre-family (v1) manifest: the probe plan comes from the
				// member's own SQL. v1 members of one set share a canonical
				// form, so the derivation cannot diverge from the set's.
				spec, shared = deriveSpec(qs[i], partitionBy)
			}
			if shared && set.lanes != nil {
				set.lanes[spec]++
			}
			set.refs[ent.id] = struct{}{}
			s.regs[ent.id] = &registration{id: ent.id, sql: ent.sql, set: set,
				plan: plans[i], canon: qs[i].String(), shared: shared && set.lanes != nil, spec: spec}
			// Newest set per canonical form wins the join table (higher
			// setID == created later); every member registers its own form.
			if prev, ok := s.sets[qs[i].String()]; !ok || prev.setID < sid {
				s.sets[qs[i].String()] = set
			}
		}
		if setShared {
			if prev, ok := s.states[stateKey]; !ok || prev.setID < sid {
				s.states[stateKey] = set
			}
			if baseKey != "" {
				if prev, ok := s.baseKeys[baseKey]; !ok || prev.setID < sid {
					s.baseKeys[baseKey] = set
				}
			}
			// Reinstall the probe lanes the live catalog was serving, before
			// WAL replay maintains them (a no-op while every member reads the
			// base result).
			if err := s.installLanesLocked(set); err != nil {
				closeAll()
				return nil, fmt.Errorf("catalog: recover set %d: %w", sid, err)
			}
		}
	}

	// Replay the shared WAL: record i fans out to every set with since <= i.
	sets := s.distinctSetsLocked()
	var dec engine.EventDecoder
	var batch []engine.Event
	idx := uint64(0)
	_, _, err = checkpoint.ReadWAL(walPath(opt.Dir, gen), func(rec []byte) error {
		batch = batch[:0]
		if err := decodeBatchRecord(rec, &dec, func(e engine.Event) error {
			batch = append(batch, e)
			return nil
		}); err != nil {
			return err
		}
		for _, set := range sets {
			if set.since <= idx {
				if err := set.svc.ApplyBatch(batch); err != nil {
					return err
				}
			}
		}
		idx++
		return nil
	})
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("catalog: WAL replay: %w", err)
	}
	s.records = idx
	s.applied = appliedBase + idx

	// Rotate to a fresh generation so the replayed WAL is compacted away.
	// CreateWAL truncates, so the old WAL must never be reopened for append.
	s.dur = &durableState{dir: opt.Dir, gen: gen}
	if err := s.rotateLocked(); err != nil {
		closeAll()
		return nil, err
	}
	return s, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
