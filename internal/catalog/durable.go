package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"rpai/internal/checkpoint"
	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
)

// On-disk layout of a durable catalog directory (generation G):
//
//	CATALOG             registration manifest (tmp+rename, CRC record)
//	g<G>-shard-0.wal    the shared ingest WAL: ONE record per applied batch
//	g<G>/s<setID>/      one standalone serve checkpoint per executor set
//
// The CATALOG manifest maps every registered QueryID to its SQL, its
// executor-set ID, and `since` — the WAL record index the set's snapshot
// state is current through. Recovery re-registers everything from the
// manifest, restores each set from its snapshot directory, then replays the
// shared WAL: record i goes to every set with since <= i, which is exactly
// the fan-out the live catalog performed. A set registered after the last
// checkpoint has no snapshot directory and recovers from its WAL suffix
// alone.
//
// Checkpoint rotates generations in the crash-safe order the single-query
// layer established: drain and snapshot every set under g<G+1>/, create the
// g<G+1> WAL, swap the CATALOG manifest (the commit point), then delete
// generation G. A crash anywhere before the swap recovers from G; after it,
// from G+1.

const (
	// catalogName is the manifest file.
	catalogName = "CATALOG"
	// catalogMagic brands the manifest; catalogVersion the record format.
	// Version 2 adds a flags byte and the threshold constant to each entry
	// (family membership); version-1 manifests still decode — family data is
	// re-derived from each entry's SQL at recovery.
	catalogMagic   = "RPCG"
	catalogVersion = 2
	// entryFamily marks a version-2 entry whose query is served as a fan
	// lane of a family executor set; its famConst field is the lane.
	entryFamily = 1 << 0
	// maxManifestQueries bounds decode allocation for corrupt files.
	maxManifestQueries = 1 << 20
)

// durableState is the catalog's persistence handle.
type durableState struct {
	dir string
	gen uint64
	wal *checkpoint.WALWriter
}

// catEntry is one manifest line. fam/famConst record family service (the
// entry reads a fan lane at constant famConst); a version-1 manifest leaves
// them zero and derive set, and recovery re-derives both from the SQL.
type catEntry struct {
	id       QueryID
	setID    uint64
	since    uint64
	sql      string
	fam      bool
	famConst float64
	derive   bool
}

func walPath(dir string, gen uint64) string { return checkpoint.WALPath(dir, gen, 0) }

func setDir(dir string, gen, setID uint64) string {
	return filepath.Join(dir, fmt.Sprintf("g%d", gen), fmt.Sprintf("s%d", setID))
}

// initDurable creates a fresh durable catalog directory: generation-1 WAL
// plus an empty manifest. An existing manifest is rejected — recovering an
// existing directory is Recover's job, and silently truncating its WAL here
// would destroy it.
func (s *Service) initDurable() error {
	dir := s.opt.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, catalogName)); err == nil {
		return fmt.Errorf("catalog: %s already has a CATALOG manifest; use Recover", dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	const gen = 1
	wal, err := checkpoint.CreateWAL(walPath(dir, gen), checkpoint.Header{Gen: gen, Shard: 0, ShardCount: 1})
	if err != nil {
		return err
	}
	s.dur = &durableState{dir: dir, gen: gen, wal: wal}
	if err := s.writeManifestLocked(); err != nil {
		wal.Close()
		s.dur = nil
		return err
	}
	return nil
}

// appendWAL logs one batch as one record and flushes it to the OS. Callers
// hold ingestMu, so record order is application order.
func (s *Service) appendWAL(events []engine.Event) error {
	rec := encodeBatchRecord(nil, events)
	if err := s.dur.wal.Append(rec); err != nil {
		return err
	}
	return s.dur.wal.Flush()
}

// manifestEntriesLocked snapshots the registration table for persisting.
// Callers hold mu.
func (s *Service) manifestEntriesLocked() []catEntry {
	entries := make([]catEntry, 0, len(s.regs))
	for _, reg := range s.regs {
		entries = append(entries, catEntry{
			id: reg.id, setID: reg.set.setID, since: reg.set.since, sql: reg.sql,
			fam: reg.set.famKey != "", famConst: reg.famConst,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	return entries
}

// writeManifestLocked persists the current registration table. Callers hold
// mu for write.
func (s *Service) writeManifestLocked() error {
	return writeCatalogFile(s.dur.dir, s.dur.gen, uint64(s.nextID), s.nextSet, s.opt.PartitionBy, s.manifestEntriesLocked())
}

// writeCatalogFile writes the CATALOG manifest: magic, then one CRC-framed
// record, installed by tmp+rename+sync so readers see the old manifest or
// the new one, never a torn mix.
func writeCatalogFile(dir string, gen, nextID, nextSet uint64, partitionBy []string, entries []catEntry) error {
	var rec bytes.Buffer
	e := checkpoint.NewEncoder(&rec)
	e.U32(catalogVersion)
	e.U64(gen)
	e.U64(nextID)
	e.U64(nextSet)
	e.U32(uint32(len(partitionBy)))
	for _, c := range partitionBy {
		e.Str(c)
	}
	e.U32(uint32(len(entries)))
	for _, ent := range entries {
		e.U64(uint64(ent.id))
		e.U64(ent.setID)
		e.U64(ent.since)
		e.Str(ent.sql)
		var flags uint8
		if ent.fam {
			flags |= entryFamily
		}
		e.U8(flags)
		e.F64(ent.famConst)
	}
	if err := e.Err(); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(catalogMagic)
	if err := checkpoint.WriteRecord(&buf, rec.Bytes()); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, catalogName+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, catalogName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readCatalogFile loads and validates the CATALOG manifest.
func readCatalogFile(dir string) (gen, nextID, nextSet uint64, partitionBy []string, entries []catEntry, err error) {
	b, err := os.ReadFile(filepath.Join(dir, catalogName))
	if err != nil {
		return 0, 0, 0, nil, nil, err
	}
	if len(b) < len(catalogMagic) || string(b[:len(catalogMagic)]) != catalogMagic {
		return 0, 0, 0, nil, nil, fmt.Errorf("catalog: bad CATALOG magic in %s", dir)
	}
	rec, err := checkpoint.ReadRecord(bytes.NewReader(b[len(catalogMagic):]))
	if err != nil {
		return 0, 0, 0, nil, nil, fmt.Errorf("catalog: CATALOG manifest: %w", err)
	}
	d := checkpoint.NewDecoder(bytes.NewReader(rec))
	v := d.U32()
	if d.Err() == nil && (v < 1 || v > catalogVersion) {
		return 0, 0, 0, nil, nil, fmt.Errorf("catalog: unsupported CATALOG version %d", v)
	}
	gen = d.U64()
	nextID = d.U64()
	nextSet = d.U64()
	np := d.U32()
	if d.Err() == nil && np > maxManifestQueries {
		return 0, 0, 0, nil, nil, fmt.Errorf("catalog: implausible partition-column count %d", np)
	}
	for i := uint32(0); i < np && d.Err() == nil; i++ {
		partitionBy = append(partitionBy, d.Str())
	}
	nq := d.U32()
	if d.Err() == nil && nq > maxManifestQueries {
		return 0, 0, 0, nil, nil, fmt.Errorf("catalog: implausible query count %d", nq)
	}
	for i := uint32(0); i < nq && d.Err() == nil; i++ {
		ent := catEntry{
			id:    QueryID(d.U64()),
			setID: d.U64(),
			since: d.U64(),
			sql:   d.Str(),
		}
		if v >= 2 {
			flags := d.U8()
			ent.famConst = d.F64()
			ent.fam = flags&entryFamily != 0
		} else {
			// Pre-family manifest: membership and lane constants are
			// re-derived from the SQL during recovery.
			ent.derive = true
		}
		entries = append(entries, ent)
	}
	if err := d.Err(); err != nil {
		return 0, 0, 0, nil, nil, fmt.Errorf("catalog: CATALOG manifest: %w", err)
	}
	return gen, nextID, nextSet, partitionBy, entries, nil
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Checkpoint rotates the catalog to a new generation: every executor set is
// drained and snapshotted, a fresh WAL starts, and the manifest swap commits
// the rotation (the old generation is removed afterwards). Replay cost after
// a crash resets to zero.
func (s *Service) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.dur == nil {
		return errors.New("catalog: Checkpoint requires Options.Dir")
	}
	return s.rotateLocked()
}

// rotateLocked performs the generation rotation. Callers hold mu for write
// (so no ingest or registration is in flight).
func (s *Service) rotateLocked() error {
	dir, oldGen := s.dur.dir, s.dur.gen
	newGen := oldGen + 1
	sets := s.distinctSetsLocked()
	for _, set := range sets {
		if err := set.svc.Drain(); err != nil {
			return err
		}
		if err := set.svc.Checkpoint(setDir(dir, newGen, set.setID)); err != nil {
			return err
		}
	}
	newWAL, err := checkpoint.CreateWAL(walPath(dir, newGen), checkpoint.Header{Gen: newGen, Shard: 0, ShardCount: 1})
	if err != nil {
		return err
	}
	// The manifest swap is the commit point: all sets are current through the
	// (empty) new WAL, so every since is 0.
	entries := s.manifestEntriesLocked()
	for i := range entries {
		entries[i].since = 0
	}
	if err := writeCatalogFile(dir, newGen, uint64(s.nextID), s.nextSet, s.opt.PartitionBy, entries); err != nil {
		newWAL.Close()
		os.Remove(walPath(dir, newGen))
		os.RemoveAll(filepath.Join(dir, fmt.Sprintf("g%d", newGen)))
		return err
	}
	s.dur.wal.Close()
	s.dur.wal = newWAL
	s.dur.gen = newGen
	s.records = 0
	for _, set := range sets {
		set.since = 0
	}
	os.Remove(walPath(dir, oldGen))
	os.RemoveAll(filepath.Join(dir, fmt.Sprintf("g%d", oldGen)))
	return nil
}

// Recover rebuilds a durable catalog from its directory: registrations come
// back from the CATALOG manifest, each executor set restores from its
// snapshot (when one exists), and the shared WAL replays into every set that
// had not yet seen its records. Recovery ends with a generation rotation, so
// the next crash replays only what follows. opt.Dir names the directory;
// opt.PartitionBy, when set, must match the persisted columns.
func Recover(opt Options) (*Service, error) {
	if opt.Dir == "" {
		return nil, errors.New("catalog: Recover requires Options.Dir")
	}
	gen, nextID, nextSet, partitionBy, entries, err := readCatalogFile(opt.Dir)
	if err != nil {
		return nil, err
	}
	if len(opt.PartitionBy) > 0 && !equalStrings(opt.PartitionBy, partitionBy) {
		return nil, fmt.Errorf("catalog: partition columns %v do not match persisted %v", opt.PartitionBy, partitionBy)
	}
	opt.PartitionBy = partitionBy
	s := &Service{
		opt:      opt,
		regs:     make(map[QueryID]*registration),
		sets:     make(map[string]*execSet),
		families: make(map[string]*execSet),
		nextID:   QueryID(nextID),
		nextSet:  nextSet,
	}
	if s.nextID < 1 {
		s.nextID = 1
	}
	if s.nextSet < 1 {
		s.nextSet = 1
	}

	// Rebuild executor sets: group manifest entries by set, restore each set
	// from its snapshot directory when one exists.
	bySet := make(map[uint64][]catEntry)
	var setIDs []uint64
	for _, ent := range entries {
		if _, ok := bySet[ent.setID]; !ok {
			setIDs = append(setIDs, ent.setID)
		}
		bySet[ent.setID] = append(bySet[ent.setID], ent)
	}
	sort.Slice(setIDs, func(i, j int) bool { return setIDs[i] < setIDs[j] })
	closeAll := func() {
		for _, set := range s.sets {
			set.svc.Close()
		}
	}
	serveOpt := s.serveOptions()
	for _, sid := range setIDs {
		ents := bySet[sid]
		// Parse and plan every member: family members of one set have
		// distinct SQL (same structure, different threshold constant), so a
		// per-entry plan is required. ents[0] — the lowest surviving QueryID
		// — is the representative whose query the executors are built from.
		qs := make([]*query.Query, len(ents))
		plans := make([]engine.Plan, len(ents))
		for i, ent := range ents {
			q, err := sqlparse.Parse(ent.sql)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("catalog: manifest query %d: %w", ent.id, err)
			}
			plan, err := engine.Describe(q)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("catalog: manifest query %d: %w", ent.id, err)
			}
			qs[i], plans[i] = q, plan
		}
		q := qs[0]
		canon := q.String()
		sd := setDir(opt.Dir, gen, sid)
		var svc *serve.Service[engine.Event]
		var err error
		if _, statErr := os.Stat(sd); statErr == nil {
			svc, err = serve.RecoverForQuery(sd, q, partitionBy, serveOpt)
		} else if errors.Is(statErr, os.ErrNotExist) {
			// Registered after the last checkpoint: state lives in the WAL
			// suffix alone.
			svc, err = serve.ForQuery(q, partitionBy, serveOpt)
		} else {
			err = statErr
		}
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("catalog: recover set %d: %w", sid, err)
		}
		// Recovered sets are conservatively treated as carrying history
		// (ingested): the sharing rules only admit joins into provably empty
		// sets, and a recovered one cannot prove that.
		set := &execSet{setID: sid, canon: canon, q: q, svc: svc,
			refs: make(map[QueryID]struct{}), since: ents[0].since, ingested: true}
		famKey, _, famOK := engine.FamilyKey(q)
		if famOK {
			set.famKey = famKey
			set.lanes = make(map[uint64]int)
		}
		for i, ent := range ents {
			famConst := ent.famConst
			if ent.derive && famOK {
				// Pre-family (v1) manifest: the lane constant comes from the
				// member's own SQL. v1 members of one set share a canonical
				// form, so the derivation cannot diverge from the set's.
				_, famConst, _ = engine.FamilyKey(qs[i])
			}
			if famOK {
				set.lanes[math.Float64bits(famConst)]++
			}
			set.refs[ent.id] = struct{}{}
			s.regs[ent.id] = &registration{id: ent.id, sql: ent.sql, set: set,
				plan: plans[i], canon: qs[i].String(), famConst: famConst}
			// Newest set per canonical form wins the join table (higher
			// setID == created later); every member registers its own form.
			if prev, ok := s.sets[qs[i].String()]; !ok || prev.setID < sid {
				s.sets[qs[i].String()] = set
			}
		}
		if famOK {
			if prev, ok := s.families[famKey]; !ok || prev.setID < sid {
				s.families[famKey] = set
			}
			// Multiple distinct constants: reinstall the fan lanes the live
			// catalog was serving, before WAL replay maintains them.
			if len(set.lanes) > 1 {
				if err := s.installLanesLocked(set); err != nil {
					closeAll()
					return nil, fmt.Errorf("catalog: recover set %d: %w", sid, err)
				}
			}
		}
	}

	// Replay the shared WAL: record i fans out to every set with since <= i.
	sets := s.distinctSetsLocked()
	var dec engine.EventDecoder
	var batch []engine.Event
	idx := uint64(0)
	_, _, err = checkpoint.ReadWAL(walPath(opt.Dir, gen), func(rec []byte) error {
		batch = batch[:0]
		if err := decodeBatchRecord(rec, &dec, func(e engine.Event) error {
			batch = append(batch, e)
			return nil
		}); err != nil {
			return err
		}
		for _, set := range sets {
			if set.since <= idx {
				if err := set.svc.ApplyBatch(batch); err != nil {
					return err
				}
			}
		}
		idx++
		return nil
	})
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("catalog: WAL replay: %w", err)
	}
	s.records = idx

	// Rotate to a fresh generation so the replayed WAL is compacted away.
	// CreateWAL truncates, so the old WAL must never be reopened for append.
	s.dur = &durableState{dir: opt.Dir, gen: gen}
	if err := s.recoverRotate(); err != nil {
		closeAll()
		return nil, err
	}
	return s, nil
}

// recoverRotate is rotateLocked for the recovery path, where no WAL writer
// is open yet.
func (s *Service) recoverRotate() error {
	dir, oldGen := s.dur.dir, s.dur.gen
	newGen := oldGen + 1
	sets := s.distinctSetsLocked()
	for _, set := range sets {
		if err := set.svc.Drain(); err != nil {
			return err
		}
		if err := set.svc.Checkpoint(setDir(dir, newGen, set.setID)); err != nil {
			return err
		}
	}
	newWAL, err := checkpoint.CreateWAL(walPath(dir, newGen), checkpoint.Header{Gen: newGen, Shard: 0, ShardCount: 1})
	if err != nil {
		return err
	}
	entries := s.manifestEntriesLocked()
	for i := range entries {
		entries[i].since = 0
	}
	if err := writeCatalogFile(dir, newGen, uint64(s.nextID), s.nextSet, s.opt.PartitionBy, entries); err != nil {
		newWAL.Close()
		os.Remove(walPath(dir, newGen))
		os.RemoveAll(filepath.Join(dir, fmt.Sprintf("g%d", newGen)))
		return err
	}
	s.dur.wal = newWAL
	s.dur.gen = newGen
	s.records = 0
	for _, set := range sets {
		set.since = 0
	}
	os.Remove(walPath(dir, oldGen))
	os.RemoveAll(filepath.Join(dir, fmt.Sprintf("g%d", oldGen)))
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
