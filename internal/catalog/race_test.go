package catalog

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"rpai/internal/engine"
	"rpai/internal/serve"
)

// TestFamilyChurnRace hammers one catalog with concurrent ingest, reads,
// subscriptions, and register/unregister churn of family members. The
// anchors — one member per lane of the founding family — are never
// unregistered, so churning co-tenants in and out of their executor set must
// not tear down (or misroute) the anchors' state: every anchor read and
// subscription must keep succeeding throughout, and the final drained
// results must match a serial reference. Run under -race (CI's catalog job)
// this is the family-lifecycle data-race test.
func TestFamilyChurnRace(t *testing.T) {
	cat, err := New(Options{PartitionBy: []string{"sym"}, Shards: 2, BatchSize: 16, QueueLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	// Anchors: a two-lane family plus an exact duplicate.
	anchors := map[QueryID]string{}
	for _, sql := range []string{sqlVWAP, sqlVWAP90, sqlVWAP2} {
		id, _, err := cat.Register(sql)
		if err != nil {
			t.Fatal(err)
		}
		anchors[id] = sql
	}

	events := catEvents(61, 4000, 11)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		failed.Store(true)
		t.Errorf(format, args...)
	}

	// Readers: results, grouped results, explains, and stats for the anchors.
	for id := range anchors {
		wg.Add(1)
		go func(id QueryID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cat.Result(id); err != nil {
					fail("anchor %d result: %v", id, err)
					return
				}
				if _, err := cat.ResultGrouped(id); err != nil {
					fail("anchor %d grouped: %v", id, err)
					return
				}
				if _, err := cat.Get(id); err != nil {
					fail("anchor %d explain: %v", id, err)
					return
				}
				_ = cat.Stats()
			}
		}(id)
	}

	// Subscriber churn: attach to an anchor, consume a few frames, detach.
	for id := range anchors {
		wg.Add(1)
		go func(id QueryID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := cat.Subscribe(id, serve.SubOptions{Buffer: 16})
				if err != nil {
					fail("anchor %d subscribe: %v", id, err)
					return
				}
				for i := 0; i < 4; i++ {
					select {
					case <-stop:
						sub.Close()
						return
					case _, ok := <-sub.Frames():
						if !ok {
							fail("anchor %d subscription torn down by co-tenant churn", id)
							sub.Close()
							return
						}
					}
				}
				sub.Close()
			}
		}(id)
	}

	// Register/unregister churn: transient members joining the anchors' sets
	// — exact duplicates, the family's constants, aggregate variants
	// (COUNT/AVG probe lanes on the anchors' state), a filtered variant
	// (residual probe gate) — and distinct strangers, unregistered as fast as
	// they arrive. Every attach/detach reconciles the set's probe lanes under
	// live ingest, which is the ProbePlan churn this test races.
	const (
		sqlChurnCount = `SELECT COUNT(*) FROM bids b
WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
		sqlChurnAvg = `SELECT AVG(b.price * b.volume) FROM bids b
WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
		sqlChurnRes = `SELECT SUM(b.price * b.volume) FROM bids b
WHERE b.sym > 4
AND 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
      < (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price <= b.price)`
	)
	churnSQLs := []string{
		sqlVWAP, sqlVWAP2, sqlVWAP90, sqlVWAP60, sqlEq, sqlNested,
		sqlChurnCount, sqlChurnAvg, sqlChurnRes,
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id, _, err := cat.Register(churnSQLs[(g+i)%len(churnSQLs)])
				if err != nil {
					fail("churn register: %v", err)
					return
				}
				if _, err := cat.Result(id); err != nil {
					fail("churn member %d result: %v", id, err)
					return
				}
				if err := cat.Unregister(id); err != nil {
					fail("churn unregister %d: %v", id, err)
					return
				}
			}
		}(g)
	}

	// Ingest on the main goroutine so the trace length bounds the run.
	applyBatches(t, events, 40, func(b []engine.Event) error {
		if failed.Load() {
			return errors.New("concurrent failure (see errors above)")
		}
		return cat.ApplyBatch(b)
	})
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}
	if err := cat.DrainAll(); err != nil {
		t.Fatal(err)
	}

	// Survivor correctness: every anchor matches a serial reference.
	for id, sql := range anchors {
		ref, err := serve.ForQuery(mustParse(t, sql), []string{"sym"}, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyBatch(events); err != nil {
			t.Fatal(err)
		}
		if err := ref.Drain(); err != nil {
			t.Fatal(err)
		}
		got, err := cat.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := ref.Result(); got != want {
			t.Fatalf("anchor %d after churn: %v, reference %v", id, got, want)
		}
		ref.Close()
	}
}
