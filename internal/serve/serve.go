// Package serve is the sharded concurrent serving layer over the incremental
// executors: the substrate that turns the single-threaded RPAI machinery into
// a streaming service consuming batched deltas under concurrent reads, the
// execution model DBToaster-style higher-order IVM and DBSP frame for
// incremental maintenance.
//
// The design is share-nothing. The event stream is partitioned by a
// user-supplied partition key (for example an instrument symbol, a broker id,
// or a TPC-H order key); partitions are assigned to N shards by key hash, and
// each shard is one worker goroutine owning one incremental executor per
// partition. A shard drains its buffered input channel in batches: it applies
// every event of the batch to the owning partition's executor, refreshes the
// results of the partitions the batch touched, and then publishes an
// immutable snapshot of all its partition results through an atomic pointer.
// Readers therefore never take a lock and never block a writer: Result and
// ResultGrouped read the last published snapshots, which lag the input by at
// most one batch per shard (call Drain for a barrier).
//
// Semantics: the served query is evaluated independently per partition, as if
// each partition key had its own relation. Result returns the sum over
// partitions and ResultGrouped the per-partition values, so for queries whose
// correlated subqueries bind on the partition key (for example TPC-H Q18
// grouped by order key) the served output coincides with the global grouped
// query; for per-instrument queries such as VWAP it is the usual
// one-executor-per-symbol serving deployment. The output is invariant to the
// shard count — the property the differential tests in this package check.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rpai/internal/checkpoint"
	"rpai/internal/engine"
)

// ErrClosed is returned by Apply, Drain, Checkpoint and Close itself once the
// service has been closed. Every public entry point that needs a live service
// reports the closed state this way; callers can test for it with errors.Is.
var ErrClosed = errors.New("serve: service is closed")

// ErrBusy is returned by TryApply when the owning shard's queue is full. It is
// the serving layer's load-shed signal: callers that must not block (the wire
// server's non-batched fast path, for example) surface it to the client
// instead of queueing unboundedly.
var ErrBusy = errors.New("serve: shard queue full")

// Executor is the per-partition maintained state: the subset of
// engine.Executor (and of the hand-written query executors in package
// queries) the serving layer needs.
type Executor[E any] interface {
	// Apply processes one event.
	Apply(e E)
	// Result returns the current query output for this partition.
	Result() float64
}

// BatchExecutor is an Executor with a native bulk path (engine.BatchExecutor
// seen through the serving layer's event type). ApplyBatch must leave exactly
// the state an Apply loop over the same events leaves — shard workers hand
// each partition its drained events in one call, so an implementation that
// reordered float operations would change served results.
type BatchExecutor[E any] interface {
	Executor[E]
	// ApplyBatch processes events in order as one batch.
	ApplyBatch(events []E)
}

// Config parameterizes a Service.
type Config[E any] struct {
	// Shards is the number of worker goroutines (default 1). Partitions are
	// assigned to shards by key hash, so the same key always lands on the
	// same shard and per-partition event order is preserved.
	Shards int
	// QueueLen is the per-shard input channel buffer (default 1024 events).
	QueueLen int
	// BatchSize bounds how many queued events a shard drains into one batch
	// before it applies them, republishes its snapshot and group-commits the
	// WAL. The zero value selects the default of 64; negative values are
	// rejected by New. Larger batches amortize executor dispatch, snapshot
	// publication and the WAL flush; smaller ones tighten read freshness.
	// The effective value is surfaced per shard in ShardStats.BatchSize.
	BatchSize int
	// Partition appends the event's partition key columns to buf and returns
	// the extended slice (append-style, so steady-state routing does not
	// allocate). It must be pure: the same event must always yield the same
	// key.
	Partition func(e E, buf []float64) []float64
	// PartitionCols names the key columns Partition extracts, in order. It is
	// only required for probe lanes with residual conjuncts (SetProbes): a
	// residual gate compares one named key column against a constant per
	// partition.
	PartitionCols []string
	// New constructs the executor for a new partition key.
	New func(key []float64) Executor[E]
	// Durable enables checkpoint/WAL persistence (nil disables it).
	Durable *Durable[E]
}

// Durable configures persistence for a Service: how events are framed in the
// per-shard write-ahead logs and how partition executors are snapshotted and
// restored. Snapshot/Restore are required for Checkpoint and Recover;
// EncodeEvent/DecodeEvent and Dir are additionally required for WAL logging.
type Durable[E any] struct {
	// Dir, when non-empty, is the live checkpoint directory: each batch a
	// shard applies is group-committed to its WAL under Dir as a single
	// record (the batch's events concatenated with u32 length prefixes). The
	// WAL is flushed whenever the shard goes idle and before any barrier is
	// acknowledged, so under sustained load one flush covers many batch
	// records and after Drain returns all acknowledged events survive a
	// process crash. Checkpoint(Dir) rotates the WALs into a fresh snapshot
	// generation. When Dir is empty no WAL is kept; Checkpoint still exports
	// consistent snapshots to any directory.
	Dir string
	// CompactEvery, when positive, rotates a shard's snapshot after that many
	// events have accumulated in its WAL, bounding replay work on recovery.
	CompactEvery int
	// EncodeEvent appends e's WAL encoding to buf and returns the extended
	// slice.
	EncodeEvent func(buf []byte, e E) []byte
	// DecodeEvent parses a WAL record payload written by EncodeEvent.
	DecodeEvent func(p []byte) (E, error)
	// Snapshot writes one partition executor's state to w.
	Snapshot func(w io.Writer, key []float64, ex Executor[E]) error
	// Restore rebuilds one partition executor from a Snapshot stream.
	Restore func(r io.Reader, key []float64) (Executor[E], error)
}

// item is one queue entry: an event, a whole pre-routed batch of events when
// batch is set, a drain barrier when sync is set, or a control request when
// ctl is set. Control requests run on the shard's worker goroutine, giving
// them exclusive access to the shard state without locks.
type item[E any] struct {
	ev    E
	batch *batchBox[E]
	sync  chan<- struct{}
	ctl   *ctl[E]
}

// batchBox carries one shard's slice of an ApplyBatch call through the queue.
// Boxes are pooled: the worker returns them after unpacking, so steady-state
// batch ingest reuses the same backing arrays.
type batchBox[E any] struct {
	events []E
}

// ctl is a control request executed inline by a shard worker (checkpoint
// rotation, recovery installation). The worker sends fn's error on done.
type ctl[E any] struct {
	fn   func(ws *workerState[E]) error
	done chan<- error
}

// workerState is the state a shard worker owns exclusively: its partitions
// and its WAL position. Control requests mutate it between batches.
type workerState[E any] struct {
	idx      int
	partCols []string // Config.PartitionCols (residual gate evaluation)
	parts    map[string]*partition[E]
	// plist is the insertion-ordered partition list and groups its parallel
	// result row per partition (groups[p.slot] tracks p.last). commit
	// publishes by cloning groups in one copy instead of walking the parts
	// map and re-boxing every row — the map walk plus per-row append was the
	// dominant snapshot-publish cost at high partition counts.
	plist   []*partition[E]
	groups  []engine.GroupResult
	wal     *checkpoint.WALWriter
	gen     uint64 // checkpoint generation the WAL belongs to
	seq     uint64 // snapshot sequence the WAL follows
	pending int    // events appended to the WAL since its header
	err     error  // sticky durability error, surfaced on control requests
	// version counts this shard's snapshot publications: every commit bumps
	// it, so it is the monotonic version readers and subscribers key on.
	version uint64
	// lastChange is the newest version whose commit actually changed state
	// (touched partitions or a wholesale swap). A subscriber resuming from
	// version v >= lastChange is provably current — every later commit was
	// empty — so no reseed frame is needed.
	lastChange uint64
	// subs are the subscriber slots registered on this shard; commit merges
	// each publication's delta into every slot (see subscribe.go).
	subs []*subShard
	// publishFull makes the next commit offer subscribers the full partition
	// set instead of the dirty delta — set after a wholesale state swap
	// (replica rebase) or a lane change (SetProbes), where the previous
	// published state is no longer a valid delta base.
	publishFull bool
	// specs are the installed probe lanes in canonical order (see SetProbes);
	// empty disables the lane read path. hasAvg notes whether any lane needs
	// the count side (AVG lanes publish raw sum/count pairs).
	specs  []engine.ProbeSpec
	hasAvg bool
}

// partition is one partition owned by a shard: its executor plus the cached
// result the snapshots are built from. pend buffers the current batch's
// events for this partition so the whole run is handed to the executor's
// ApplyBatch in one call.
type partition[E any] struct {
	vals    []float64 // partition key values (immutable, shared with snapshots)
	ekey    string    // canonical byte encoding of vals (subscriber filter key)
	ex      Executor[E]
	bex     BatchExecutor[E] // ex's native batched path, nil if it has none
	probeEx ProbeExecutor    // ex's probe-lane path, nil if it has none
	pend    []E              // events buffered for the in-progress batch
	last    float64
	// fan/fanCnt are the per-lane results, parallel to the worker's specs:
	// final values for SUM/COUNT lanes, raw (term sum, count) pairs for AVG
	// lanes. gate holds each lane's residual verdict for this partition's
	// key; gated-off lanes are zeroed after every refresh so they contribute
	// nothing to lane totals — exactly a dedicated executor's 0 result for a
	// partition its residual conjunct excludes.
	fan    []float64
	fanCnt []float64
	gate   []bool
	dirty  bool
	slot   int // index into the owning worker's plist/groups
}

// refreshLanes re-evaluates every installed lane against this partition's
// executor and applies the residual gates.
func (p *partition[E]) refreshLanes(ws *workerState[E]) {
	if len(ws.specs) == 0 || p.probeEx == nil {
		return
	}
	p.probeEx.ResultProbe(ws.specs, p.fan, p.fanCnt)
	for i, on := range p.gate {
		if !on {
			p.fan[i] = 0
			p.fanCnt[i] = 0
		}
	}
}

// addPartition registers p in the worker's map and ordered list, keeping the
// published-groups row aligned with the partition's slot.
func (ws *workerState[E]) addPartition(p *partition[E]) {
	p.slot = len(ws.plist)
	ws.parts[p.ekey] = p
	ws.plist = append(ws.plist, p)
	ws.groups = append(ws.groups, engine.GroupResult{Key: p.vals, Value: p.last})
	if len(ws.specs) > 0 && p.probeEx != nil {
		// Seed the lane results so partitions installed outside the dirty
		// path (recovery restore, replica rebase) publish correct lanes.
		ws.sizeLanes(p)
		p.refreshLanes(ws)
	}
}

// sizeLanes sizes p's lane buffers to the installed spec count and evaluates
// the partition's residual gates.
func (ws *workerState[E]) sizeLanes(p *partition[E]) {
	k := len(ws.specs)
	p.fan = sizedFloats(p.fan, k)
	p.fanCnt = sizedFloats(p.fanCnt, k)
	if cap(p.gate) < k {
		p.gate = make([]bool, k)
	} else {
		p.gate = p.gate[:k]
	}
	for i, sp := range ws.specs {
		p.gate[i] = sp.GateOn(ws.partCols, p.vals)
	}
}

// laneMatrix clones the workers' per-partition lane rows (the value side, or
// the count side for AVG lanes) into one slot-major immutable matrix.
func laneMatrix[E any](ws *workerState[E], cntSide bool) []float64 {
	k := len(ws.specs)
	m := make([]float64, len(ws.plist)*k)
	for _, p := range ws.plist {
		row := p.fan
		if cntSide {
			row = p.fanCnt
		}
		copy(m[p.slot*k:(p.slot+1)*k], row)
	}
	return m
}

// laneTotals sums each lane over all partition slots in slot order — the
// same summation order Snapshot.Total uses.
func laneTotals(m []float64, k, slots int) []float64 {
	t := make([]float64, k)
	for lane := 0; lane < k; lane++ {
		var v float64
		for slot := 0; slot < slots; slot++ {
			v += m[slot*k+lane]
		}
		t[lane] = v
	}
	return t
}

func sizedFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// resetParts replaces the worker's partition set wholesale (replica rebase).
func (ws *workerState[E]) resetParts(list []*partition[E]) {
	ws.parts = make(map[string]*partition[E], len(list))
	ws.plist = ws.plist[:0]
	ws.groups = ws.groups[:0]
	for _, p := range list {
		ws.addPartition(p)
	}
}

// newPartition wraps an executor, capturing its batched path once so the hot
// loop dispatches without a per-batch type assertion.
func newPartition[E any](vals []float64, ex Executor[E]) *partition[E] {
	p := &partition[E]{vals: vals, ex: ex}
	p.bex, _ = ex.(BatchExecutor[E])
	p.probeEx, _ = ex.(ProbeExecutor)
	return p
}

// applyPend feeds the partition's buffered events to its executor — one
// ApplyBatch call when the executor is batch-native, an Apply loop otherwise
// (identical results either way; see BatchExecutor).
func (p *partition[E]) applyPend() {
	if p.bex != nil {
		p.bex.ApplyBatch(p.pend)
	} else {
		for i := range p.pend {
			p.ex.Apply(p.pend[i])
		}
	}
	p.pend = p.pend[:0]
}

// Snapshot is one shard's published state: the per-partition results as of
// the shard's last batch flush. Groups is immutable and unsorted; Total is
// the sum of the group values. Version is the shard's monotonic publication
// counter: it increases by at least one between any two distinct published
// snapshots, so readers comparing versions can order their observations.
type Snapshot struct {
	Version uint64
	Total   float64
	Groups  []engine.GroupResult
	// Probe lanes (empty unless SetProbes installed them): Probes are the
	// lane specs in canonical order, FanVals the per-partition per-lane
	// results laid out slot-major (partition slot i, lane l at
	// FanVals[i*K+l], rows parallel to Groups), and FanTotals the per-lane
	// sums over all partitions in slot order — the same summation order
	// Total uses, so each lane's total is bit-identical to a dedicated
	// service's Total. AVG lanes carry raw (term sum, count) pairs: FanCnts
	// and FanCntTotals hold the count side (nil when no lane needs it), and
	// readers finish the quotient via engine.FinishProbe.
	Probes       []engine.ProbeSpec
	FanVals      []float64
	FanTotals    []float64
	FanCnts      []float64
	FanCntTotals []float64
}

// ShardStats are the per-shard serving counters.
type ShardStats struct {
	Shard      int    // shard index
	Applied    uint64 // events applied
	Flushed    uint64 // batches flushed (snapshot publications)
	QueueDepth int    // events currently buffered in the input channel
	Partitions int    // partitions owned
	// EnqueueWaitNS is the cumulative nanoseconds Apply callers spent blocked
	// on this shard's full queue — the backpressure admission control reacts
	// to, surfaced end to end through the wire protocol's stats RPC.
	EnqueueWaitNS uint64
	// Rejected counts TryApply calls shed because the queue was full.
	Rejected uint64
	// BatchSize is the shard's effective drain bound: Config.BatchSize after
	// defaulting (64 when the config left it zero).
	BatchSize int
}

type shard[E any] struct {
	idx int
	in  chan item[E]
	// snap is the read-side hot word: every Result/ResultGrouped/Version
	// call loads it. The pads keep it off the cache lines of the
	// writer-side counters below (and of the neighboring shard structs), so
	// cross-core readers do not false-share with producers hammering the
	// counters.
	_    [64]byte
	snap atomic.Pointer[Snapshot]
	_    [64]byte
	// applied and flushed are written by the worker goroutine; waitNS and
	// rejected by producers. A line of separation between the two groups
	// keeps producer stalls from invalidating the worker's line.
	applied    atomic.Uint64
	flushed    atomic.Uint64
	partitions atomic.Int64
	_          [64]byte
	waitNS     atomic.Uint64
	rejected   atomic.Uint64

	// initWAL is the WAL opened by New before the worker starts (nil when
	// durability is off or WALs are deferred until after recovery replay).
	initWAL *checkpoint.WALWriter
	// werr is the worker's sticky durability error; written by the worker
	// goroutine only and read after wg.Wait in Close.
	werr error
}

// Service is the sharded serving layer. Apply may be called from any number
// of goroutines; Result, ResultGrouped and Stats are safe concurrently with
// writers and never block them.
type Service[E any] struct {
	cfg    Config[E]
	shards []*shard[E]

	// batchPool recycles the boxes ApplyBatch ships batches in; workers
	// return them after unpacking.
	batchPool sync.Pool

	mu     sync.RWMutex // guards closed vs. in-flight Apply/Drain sends
	closed bool
	wg     sync.WaitGroup

	ckMu sync.Mutex // serializes Checkpoint calls
	gen  uint64     // current checkpoint generation (guarded by ckMu)

	// epoch identifies this service instance for subscription resume: version
	// counters restart at zero on every boot, so a resume request is honored
	// only when its epoch matches (see Subscribe).
	epoch uint64

	subMu sync.Mutex // guards subs
	subs  map[*Subscription]struct{}
}

// New starts the service's shard workers. When cfg.Durable has a Dir, the
// per-shard WALs of generation 1 are created up front and a MANIFEST is
// written, so even a never-checkpointed service recovers from its logs; a
// directory that already holds a checkpoint is rejected — use Recover to
// resume from it instead of silently truncating its logs.
func New[E any](cfg Config[E]) (*Service[E], error) {
	return newService(cfg, false)
}

func newService[E any](cfg Config[E], deferWAL bool) (*Service[E], error) {
	if cfg.Partition == nil || cfg.New == nil {
		return nil, errors.New("serve: Config.Partition and Config.New are required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("serve: Config.BatchSize must not be negative (got %d)", cfg.BatchSize)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if d := cfg.Durable; d != nil && d.Dir != "" {
		if d.EncodeEvent == nil || d.DecodeEvent == nil {
			return nil, errors.New("serve: Durable.Dir requires EncodeEvent and DecodeEvent")
		}
		if d.CompactEvery > 0 && (d.Snapshot == nil || d.Restore == nil) {
			return nil, errors.New("serve: Durable.CompactEvery requires Snapshot and Restore")
		}
	}
	s := &Service[E]{cfg: cfg, shards: make([]*shard[E], cfg.Shards), gen: 1,
		epoch: newEpoch(), subs: make(map[*Subscription]struct{})}
	logged := s.walEnabled() && !deferWAL
	if logged {
		d := cfg.Durable
		if err := os.MkdirAll(d.Dir, 0o755); err != nil {
			return nil, err
		}
		if _, err := checkpoint.ReadManifest(d.Dir); err == nil {
			return nil, fmt.Errorf("serve: %s already holds a checkpoint; use Recover to resume from it", d.Dir)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	for i := range s.shards {
		sh := &shard[E]{idx: i, in: make(chan item[E], cfg.QueueLen)}
		if logged {
			w, err := checkpoint.CreateWAL(checkpoint.WALPath(cfg.Durable.Dir, 1, i),
				checkpoint.Header{Gen: 1, Seq: 0, Shard: uint32(i), ShardCount: uint32(cfg.Shards)})
			if err != nil {
				closeWALs(s.shards[:i])
				return nil, err
			}
			sh.initWAL = w
		}
		sh.snap.Store(&Snapshot{})
		s.shards[i] = sh
	}
	if logged {
		if err := checkpoint.WriteManifest(cfg.Durable.Dir, checkpoint.Manifest{Gen: 1, Shards: uint32(cfg.Shards)}); err != nil {
			closeWALs(s.shards)
			return nil, err
		}
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.run(sh)
	}
	return s, nil
}

// walEnabled reports whether applied events are logged to per-shard WALs.
func (s *Service[E]) walEnabled() bool {
	return s.cfg.Durable != nil && s.cfg.Durable.Dir != ""
}

func closeWALs[E any](shards []*shard[E]) {
	for _, sh := range shards {
		if sh.initWAL != nil {
			sh.initWAL.Close()
		}
	}
}

// normalizeVals canonicalizes the key columns in place so that values that
// compare equal (or are all "not a number") share one bit pattern: -0 becomes
// +0 and every NaN payload becomes the canonical quiet NaN. Without this,
// hashVals and encodeKey would treat -0 and +0 (or two NaN variants) as
// distinct partition keys and one logical partition could land on two shards.
func normalizeVals(vals []float64) []float64 {
	for i, v := range vals {
		if v == 0 {
			vals[i] = 0 // collapses -0 onto +0
		} else if math.IsNaN(v) {
			vals[i] = math.NaN() // canonical quiet NaN payload
		}
	}
	return vals
}

// hashVals is FNV-1a over the IEEE-754 bits of the key columns: deterministic
// across runs, so benchmark shard assignments are reproducible. Callers pass
// normalized keys (see normalizeVals).
func hashVals(vals []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range vals {
		b := math.Float64bits(v)
		for i := 0; i < 64; i += 8 {
			h ^= (b >> i) & 0xff
			h *= prime
		}
	}
	return h
}

// encodeKey appends the canonical byte encoding of the (normalized) key
// columns to b.
func encodeKey(b []byte, vals []float64) []byte {
	for _, v := range vals {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// route returns the shard owning e's partition.
func (s *Service[E]) route(e E) *shard[E] {
	var kb [4]float64
	vals := normalizeVals(s.cfg.Partition(e, kb[:0]))
	return s.shards[hashVals(vals)%uint64(len(s.shards))]
}

// send enqueues it on sh, accounting backpressure stalls: the fast path is a
// non-blocking send, and only the full-queue path reads the clock.
func (s *Service[E]) send(sh *shard[E], it item[E]) {
	select {
	case sh.in <- it:
	default:
		start := time.Now()
		sh.in <- it
		sh.waitNS.Add(uint64(time.Since(start)))
	}
}

// Apply routes one event to its partition's shard. It blocks when the shard's
// queue is full (natural backpressure, accounted in the shard's EnqueueWaitNS
// counter) and returns ErrClosed after Close.
func (s *Service[E]) Apply(e E) error {
	sh := s.route(e)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.send(sh, item[E]{ev: e})
	s.mu.RUnlock()
	return nil
}

// ApplyBatch routes a whole batch in one pass: events are split by owning
// shard into pooled boxes (copied, so the caller may reuse its slice — the
// wire server decodes batches into per-connection scratch) and each shard
// receives its run as a single queue item, which its worker unpacks straight
// into the partitions' pending buffers. Per-shard event order is the slice
// order, exactly as if Apply had been called event by event. Blocks like
// Apply when a shard queue is full; returns ErrClosed after Close.
func (s *Service[E]) ApplyBatch(events []E) error {
	if len(events) == 0 {
		return nil
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	if len(s.shards) == 1 {
		box := s.getBox()
		box.events = append(box.events, events...)
		s.send(s.shards[0], item[E]{batch: box})
		s.mu.RUnlock()
		return nil
	}
	boxes := make([]*batchBox[E], len(s.shards))
	var kb [4]float64
	for i := range events {
		vals := normalizeVals(s.cfg.Partition(events[i], kb[:0]))
		idx := hashVals(vals) % uint64(len(s.shards))
		b := boxes[idx]
		if b == nil {
			b = s.getBox()
			boxes[idx] = b
		}
		b.events = append(b.events, events[i])
	}
	for i, b := range boxes {
		if b != nil {
			s.send(s.shards[i], item[E]{batch: b})
		}
	}
	s.mu.RUnlock()
	return nil
}

// getBox returns an empty pooled batch box.
func (s *Service[E]) getBox() *batchBox[E] {
	if b, ok := s.batchPool.Get().(*batchBox[E]); ok {
		b.events = b.events[:0]
		return b
	}
	return &batchBox[E]{}
}

// TryApply is the non-blocking Apply: when the owning shard's queue is full it
// increments the shard's Rejected counter and returns ErrBusy instead of
// waiting, so a front end can shed load while the queue depth stays bounded.
func (s *Service[E]) TryApply(e E) error {
	sh := s.route(e)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case sh.in <- item[E]{ev: e}:
		return nil
	default:
		sh.rejected.Add(1)
		return ErrBusy
	}
}

// run is the shard worker: drain a batch, buffer its events per partition,
// hand each touched partition its run via ApplyBatch, group-commit the batch
// to the WAL (one record per batch, flushed when the worker goes idle or a
// barrier needs acknowledging), refresh the touched partitions, publish the
// snapshot, release any drain barriers — in that order, so a released Drain
// implies the acknowledged events are in the log. Control
// requests and drain barriers terminate the in-progress batch: the worker
// commits everything queued before them, then serves them, preserving the
// FIFO semantics recovery and checkpointing rely on.
func (s *Service[E]) run(sh *shard[E]) {
	defer s.wg.Done()
	ws := &workerState[E]{idx: sh.idx, partCols: s.cfg.PartitionCols,
		parts: make(map[string]*partition[E]), wal: sh.initWAL, gen: 1}
	defer func() {
		if ws.wal != nil {
			if err := ws.wal.Close(); err != nil && ws.err == nil {
				ws.err = err
			}
		}
		sh.werr = ws.err
	}()
	var (
		dirty   []*partition[E]
		syncs   []chan<- struct{}
		keyBuf  []float64
		byteBuf []byte
		walBuf  []byte
	)
	enqueue := func(e E) {
		keyBuf = normalizeVals(s.cfg.Partition(e, keyBuf[:0]))
		byteBuf = encodeKey(byteBuf[:0], keyBuf)
		p, ok := ws.parts[string(byteBuf)] // no alloc: compiler-optimized map access
		if !ok {
			vals := append([]float64(nil), keyBuf...)
			p = newPartition(vals, s.cfg.New(vals))
			p.ekey = string(byteBuf)
			ws.addPartition(p)
			sh.partitions.Store(int64(len(ws.parts)))
		}
		p.pend = append(p.pend, e)
		if ws.wal != nil && ws.err == nil {
			// Group commit: frame the event into the batch record (u32 length
			// prefix + encoding); the record is appended and flushed once per
			// batch in commit.
			off := len(walBuf)
			walBuf = append(walBuf, 0, 0, 0, 0)
			walBuf = s.cfg.Durable.EncodeEvent(walBuf, e)
			binary.LittleEndian.PutUint32(walBuf[off:], uint32(len(walBuf)-off-4))
			ws.pending++
		}
		if !p.dirty {
			p.dirty = true
			dirty = append(dirty, p)
		}
		sh.applied.Add(1)
	}
	// commit applies the drained batch and publishes the snapshot. flushWAL
	// says whether the WAL is flushed now or left buffered: the worker defers
	// the flush while more input is already queued (group commit across
	// batches — one write syscall covers many batch records) and flushes when
	// it goes idle or before acknowledging a barrier, so Drain's durability
	// guarantee is unchanged.
	commit := func(flushWAL bool) {
		for _, p := range dirty {
			p.applyPend()
			p.last = p.ex.Result()
			ws.groups[p.slot].Value = p.last
			p.refreshLanes(ws)
			p.dirty = false
		}
		ws.version++
		if len(dirty) > 0 || ws.publishFull {
			ws.lastChange = ws.version
		}
		// Publish an immutable snapshot of every partition this shard owns.
		// The worker keeps the per-partition rows up to date in ws.groups, so
		// publication is one bulk clone of that slice (plus a slice-order
		// resum of the total, deterministic run to run) — not a walk of the
		// partition map re-boxing every row, whose iteration and per-batch
		// garbage dominated ingest CPU at high partition counts. A commit
		// that changed nothing (drain barriers, empty batches) reuses the
		// previous snapshot's Groups outright.
		prev := sh.snap.Load()
		snap := &Snapshot{Version: ws.version}
		if len(dirty) > 0 || ws.publishFull || prev == nil || len(prev.Groups) != len(ws.groups) {
			snap.Groups = append(make([]engine.GroupResult, 0, len(ws.groups)), ws.groups...)
			var total float64
			for i := range snap.Groups {
				total += snap.Groups[i].Value
			}
			snap.Total = total
			if k := len(ws.specs); k > 0 {
				snap.Probes = ws.specs
				snap.FanVals = laneMatrix(ws, false)
				snap.FanTotals = laneTotals(snap.FanVals, k, len(ws.plist))
				if ws.hasAvg {
					snap.FanCnts = laneMatrix(ws, true)
					snap.FanCntTotals = laneTotals(snap.FanCnts, k, len(ws.plist))
				}
			}
		} else {
			snap.Groups, snap.Total = prev.Groups, prev.Total
			snap.Probes, snap.FanVals, snap.FanTotals = prev.Probes, prev.FanVals, prev.FanTotals
			snap.FanCnts, snap.FanCntTotals = prev.FanCnts, prev.FanCntTotals
		}
		sh.snap.Store(snap)
		sh.flushed.Add(1)
		if len(ws.subs) > 0 || ws.publishFull {
			s.publishSubs(ws, dirty)
		}
		dirty = dirty[:0]
		if ws.wal != nil && ws.err == nil && len(walBuf) > 0 {
			if err := ws.wal.Append(walBuf); err != nil {
				ws.err = err
			}
		}
		if flushWAL && ws.wal != nil && ws.err == nil {
			if err := ws.wal.Flush(); err != nil {
				ws.err = err
			}
		}
		walBuf = walBuf[:0]
		// Bound replay work: rotate the shard's snapshot once the WAL has
		// accumulated CompactEvery events since the last rotation.
		if d := s.cfg.Durable; ws.wal != nil && ws.err == nil && d.CompactEvery > 0 && ws.pending >= d.CompactEvery {
			if err := s.compactShard(ws, d.Dir, ws.gen, true); err != nil {
				ws.err = err
			}
		}
	}
	for it := range sh.in {
		n, stop := 0, false
		handle := func(it item[E]) {
			switch {
			case it.ctl != nil:
				// Commit queued work first so the control request observes
				// (and checkpoints) fully applied, flushed state, then stop:
				// the next loop iteration starts a fresh batch.
				commit(true)
				it.ctl.done <- it.ctl.fn(ws)
				stop = true
			case it.sync != nil:
				syncs = append(syncs, it.sync)
				stop = true
			case it.batch != nil:
				for i := range it.batch.events {
					enqueue(it.batch.events[i])
				}
				n += len(it.batch.events)
				s.batchPool.Put(it.batch)
			default:
				enqueue(it.ev)
				n++
			}
		}
		handle(it)
	drain:
		for !stop && n < s.cfg.BatchSize {
			select {
			case it2, ok := <-sh.in:
				if !ok {
					break drain
				}
				handle(it2)
			default:
				break drain
			}
		}
		// Flush when a barrier must be acknowledged or the queue ran dry; a
		// full batch with more input already queued leaves the WAL buffered
		// for the next commit.
		commit(stop || len(sh.in) == 0)
		for _, c := range syncs {
			close(c)
		}
		syncs = syncs[:0]
	}
}

// Result returns the sum of all partition results as of each shard's last
// published snapshot.
func (s *Service[E]) Result() float64 {
	var total float64
	for _, sh := range s.shards {
		total += sh.snap.Load().Total
	}
	return total
}

// ResultGrouped returns the per-partition results as of each shard's last
// published snapshot, sorted by partition key (the engine.GroupedExecutor
// ordering).
func (s *Service[E]) ResultGrouped() []engine.GroupResult {
	var out []engine.GroupResult
	for _, sh := range s.shards {
		out = append(out, sh.snap.Load().Groups...)
	}
	sortGroups(out)
	return out
}

// sortGroups orders grouped results by partition key, the
// engine.GroupedExecutor ordering every grouped surface of this package uses.
func sortGroups(out []engine.GroupResult) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Version returns the sum of the shards' snapshot versions: a monotonic
// service-wide read version. Every publication on any shard increases it, so
// two successive calls never observe a decreasing value, and a write that has
// been committed (Drain returned) is visible to any read observing a version
// at least as large as the post-Drain one.
func (s *Service[E]) Version() uint64 {
	var v uint64
	for _, sh := range s.shards {
		v += sh.snap.Load().Version
	}
	return v
}

// ShardVersions returns each shard's current snapshot version, the
// fine-grained handle subscription resume is keyed on.
func (s *Service[E]) ShardVersions() []ShardVersion {
	out := make([]ShardVersion, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardVersion{Shard: i, Version: sh.snap.Load().Version}
	}
	return out
}

// Epoch identifies this service instance: shard versions are only comparable
// within one epoch, so subscription resume sends the epoch alongside the
// versions and the service falls back to a full reseed on mismatch.
func (s *Service[E]) Epoch() uint64 { return s.epoch }

// Subscribers reports the number of live subscriptions attached to the
// service — the per-query fan-out counter the catalog surfaces in stats.
func (s *Service[E]) Subscribers() int {
	s.subMu.Lock()
	n := len(s.subs)
	s.subMu.Unlock()
	return n
}

// Stats returns the per-shard serving counters.
func (s *Service[E]) Stats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStats{
			Shard:         i,
			Applied:       sh.applied.Load(),
			Flushed:       sh.flushed.Load(),
			QueueDepth:    len(sh.in),
			Partitions:    int(sh.partitions.Load()),
			EnqueueWaitNS: sh.waitNS.Load(),
			Rejected:      sh.rejected.Load(),
			BatchSize:     s.cfg.BatchSize,
		}
	}
	return out
}

// Drain blocks until every event sent before the call has been applied and
// reflected in the published snapshots (a read barrier for tests, benchmarks
// and consistent point-in-time reads).
func (s *Service[E]) Drain() error {
	dones := make([]chan struct{}, len(s.shards))
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	for i, sh := range s.shards {
		done := make(chan struct{})
		dones[i] = done
		sh.in <- item[E]{sync: done}
	}
	s.mu.RUnlock()
	for _, done := range dones {
		<-done
	}
	return nil
}

// Close stops accepting events, drains every queue, publishes the final
// snapshots, flushes and closes the WALs, and waits for the shard workers to
// exit. It returns the sticky durability errors of every failed shard, joined
// with errors.Join, so a multi-shard WAL failure is never truncated to the
// first shard's report. It is idempotent only in the sense that a second call
// returns ErrClosed.
func (s *Service[E]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Finalize live subscriptions so their Frames channels close; collect
	// first, since Close detaches under subMu.
	s.subMu.Lock()
	live := make([]*Subscription, 0, len(s.subs))
	for sub := range s.subs {
		live = append(live, sub)
	}
	s.subMu.Unlock()
	for _, sub := range live {
		sub.Close()
	}
	var errs []error
	for _, sh := range s.shards {
		if sh.werr != nil {
			errs = append(errs, fmt.Errorf("serve: shard %d durability: %w", sh.idx, sh.werr))
		}
	}
	return errors.Join(errs...)
}

// Shards reports the shard count.
func (s *Service[E]) Shards() int { return len(s.shards) }

// String summarizes the service configuration.
func (s *Service[E]) String() string {
	return fmt.Sprintf("serve.Service{shards: %d, batch: %d, queue: %d}",
		len(s.shards), s.cfg.BatchSize, s.cfg.QueueLen)
}
