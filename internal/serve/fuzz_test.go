package serve

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rpai/internal/aggindex"
	"rpai/internal/engine"
	"rpai/internal/query"
)

// subFuzzService builds a one-query sharded service whose per-partition
// executors run on the chosen RPAI representation, with BatchSize 1 so every
// applied event is its own commit and publication — the densest possible
// delta stream for a fuzzed subscriber to reconstruct.
func subFuzzService(t *testing.T, q *query.Query, shards int, kind aggindex.Kind) *Service[engine.Event] {
	t.Helper()
	svc, err := New(Config[engine.Event]{
		Shards:    shards,
		BatchSize: 1,
		Partition: func(e engine.Event, buf []float64) []float64 {
			return append(buf, e.Tuple["sym"])
		},
		New: func([]float64) Executor[engine.Event] {
			ex, err := engine.NewWithIndexKind(q, kind)
			if err != nil {
				// Unreachable: the same query planned successfully up front.
				panic("serve fuzz: " + err.Error())
			}
			return ex
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// subFuzzSeeds builds the committed seed corpus for FuzzSubscriptionDeltas.
// The input layout is shared with the engine's FuzzEngineDifferential — a
// shape byte, an 8-byte seed, then op/b1/b2 event triples — so adversarial
// traces found by one fuzzer can be replayed through the other. Here the
// shape byte selects the shard count and the RPAI representation instead of
// the query (the serving layer is query-agnostic; the executors are not the
// surface under test).
func subFuzzSeeds() [][]byte {
	trace := []byte{
		1, 5, 9, 1, 5, 3, 1, 17, 28, 1, 5, 9, 0, 0, 1, 1, 200, 100,
		1, 39, 29, 0, 0, 0, 1, 5, 9, 1, 12, 12, 0, 0, 2, 1, 1, 1,
		2, 7, 13, 1, 9, 9, 0, 1, 0, 2, 21, 34, 1, 3, 27, 0, 0, 1,
	}
	var seeds [][]byte
	for shape := byte(0); shape < 4; shape++ {
		seeds = append(seeds, append([]byte{shape, 0, 0, 0, 0, 0, 0, 0, 77}, trace...))
	}
	return seeds
}

// FuzzSubscriptionDeltas is the subscription half of the differential fuzz
// suite: a random insert/delete stream with random publish boundaries and
// random subscriber attach/detach/resume churn, on one or two shards, over
// both RPAI representations (arena and pointer tree). The invariant is the
// replay-equals-pull contract: at every drained boundary the subscriber's
// view, reconstructed from delta frames alone, is bit-identical to what
// ResultGrouped returns at the same shard versions.
func FuzzSubscriptionDeltas(f *testing.F) {
	for _, s := range subFuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		shape := data[0]
		kind := aggindex.KindArena
		if shape&1 == 1 {
			kind = aggindex.KindRPAI
		}
		shards := 1 + int(shape>>1)%2
		q := vwapSpec()
		svc := subFuzzService(t, q, shards, kind)
		defer svc.Close()

		rng := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(data[1:9]))))
		sub, err := svc.Subscribe(SubOptions{Buffer: 1024})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { sub.Close() }()
		view := NewView()

		// sync is a publish boundary: quiesce, catch the view up on frames
		// alone, and hold it to the pulled grouped results bit for bit.
		sync := func(what string) {
			t.Helper()
			if err := svc.Drain(); err != nil {
				t.Fatal(err)
			}
			syncView(t, view, sub, svc.ShardVersions())
			if got, want := view.Grouped(), svc.ResultGrouped(); !groupsIdentical(got, want) {
				t.Fatalf("%s: replayed view != pulled results:\n got %v\nwant %v", what, got, want)
			}
		}

		var live []query.Tuple
		events := 0
		for i := 9; i+2 < len(data) && events < 200; i += 3 {
			op, b1, b2 := data[i], data[i+1], data[i+2]
			var e engine.Event
			if op%4 == 0 && len(live) > 0 {
				j := (int(b1)<<8 | int(b2)) % len(live)
				e = engine.Delete(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				tup := query.Tuple{
					"sym":    float64(b1%5 + 1),
					"price":  float64(b2%40 + 1),
					"volume": float64((b1^b2)%30 + 1),
				}
				live = append(live, tup)
				e = engine.Insert(tup)
			}
			if err := svc.Apply(e); err != nil {
				t.Fatal(err)
			}
			events++

			if op%5 == 2 {
				sync("trace boundary")
			}
			if rng.Intn(10) == 0 {
				switch rng.Intn(3) {
				case 0:
					// Cold reattach: a fresh subscriber must be reseeded with
					// Full frames and reconstruct from scratch.
					sub.Close()
					view = NewView()
					if sub, err = svc.Subscribe(SubOptions{Buffer: 1024}); err != nil {
						t.Fatal(err)
					}
				case 1:
					// Resume: reattach quoting the view's coordinates. The
					// service either continues the delta stream (view state
					// provably current) or reseeds — the view absorbs both.
					sub.Close()
					sub, err = svc.Subscribe(SubOptions{
						Buffer:      1024,
						Resume:      view.Versions(),
						ResumeEpoch: svc.Epoch(),
					})
					if err != nil {
						t.Fatal(err)
					}
				case 2:
					// A transient second subscriber attaches and detaches
					// immediately; it must never disturb the primary stream.
					s2, err := svc.Subscribe(SubOptions{Buffer: 1})
					if err != nil {
						t.Fatal(err)
					}
					s2.Close()
				}
			}
		}
		sync("final")
	})
}

// TestWriteSubscriptionFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzSubscriptionDeltas from subFuzzSeeds. Run with
// WRITE_FUZZ_CORPUS=1 after changing the input layout; skipped otherwise.
func TestWriteSubscriptionFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSubscriptionDeltas")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range subFuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
