package serve

import (
	"testing"

	"rpai/internal/engine"
)

type sumExec struct{ total float64 }

func (s *sumExec) Apply(e engine.Event) { s.total += e.X * e.Tuple["v"] }
func (s *sumExec) Result() float64      { return s.total }

// TestAllocGuardApply bounds the steady-state per-event cost of the serving
// pipeline: partition-key extraction, shard routing, the worker's apply loop
// and the snapshot refresh. The ceiling is deliberately generous — the guard
// exists to catch a regression that starts allocating per event inside the
// ingest path (a lost scratch buffer, an escaping closure), not to pin an
// exact count: refresh cost depends on how the worker's batching interleaves
// with the producer.
func TestAllocGuardApply(t *testing.T) {
	svc, err := New(Config[engine.Event]{
		Shards: 1,
		Partition: func(e engine.Event, buf []float64) []float64 {
			return append(buf, e.Tuple["g"])
		},
		New: func([]float64) Executor[engine.Event] { return &sumExec{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	tup := engine.Insert(map[string]float64{"g": 1, "v": 2})
	// Warm up: create the partition and grow the worker's scratch buffers.
	for i := 0; i < 256; i++ {
		if err := svc.Apply(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	const ceiling = 8.0
	if got := testing.AllocsPerRun(500, func() {
		if err := svc.Apply(tup); err != nil {
			t.Fatal(err)
		}
	}); got > ceiling {
		t.Errorf("Service.Apply allocates %.1f per event, ceiling %.0f", got, ceiling)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
}

func (s *sumExec) ApplyBatch(events []engine.Event) {
	for i := range events {
		s.Apply(events[i])
	}
}

// TestAllocGuardApplyBatch bounds the steady-state per-batch cost of the
// batched ingest path: the pooled batch box, the single-shard fast path, the
// worker's per-partition buffering and one snapshot refresh. The ceiling is
// per batch of 64 events — the point of batching is that this cost no longer
// scales with the event count, so a regression that allocates per event blows
// through it immediately.
func TestAllocGuardApplyBatch(t *testing.T) {
	svc, err := New(Config[engine.Event]{
		Shards: 1,
		Partition: func(e engine.Event, buf []float64) []float64 {
			return append(buf, e.Tuple["g"])
		},
		New: func([]float64) Executor[engine.Event] { return &sumExec{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	batch := make([]engine.Event, 64)
	for i := range batch {
		batch[i] = engine.Insert(map[string]float64{"g": 1, "v": float64(i)})
	}
	// Warm up: create the partition, grow the worker's pend buffer and seed
	// the batch-box pool.
	for i := 0; i < 8; i++ {
		if err := svc.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	const ceiling = 16.0
	if got := testing.AllocsPerRun(200, func() {
		if err := svc.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}); got > ceiling {
		t.Errorf("Service.ApplyBatch allocates %.1f per 64-event batch, ceiling %.0f", got, ceiling)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
}
