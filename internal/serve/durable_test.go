package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rpai/internal/checkpoint"
	"rpai/internal/engine"
)

// groupedMap flattens ResultGrouped into partition-key -> value (all serving
// tests partition by a single column).
func groupedMap(svc *Service[engine.Event]) map[float64]float64 {
	out := map[float64]float64{}
	for _, g := range svc.ResultGrouped() {
		out[g.Key[0]] = g.Value
	}
	return out
}

func requireSameGroups(t *testing.T, ctx string, got, want map[float64]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d partitions, want %d", ctx, len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Fatalf("%s: partition %v = %v (present=%v), want %v", ctx, k, g, ok, w)
		}
	}
}

// buildDurableDir runs a durable service over events, checkpointing after
// checkpointAt events (0 skips the explicit checkpoint), and closes it.
func buildDurableDir(t *testing.T, dir string, shards, checkpointAt int, events []engine.Event) {
	t.Helper()
	svc, err := ForQuery(vwapSpec(), []string{"sym"}, Options{Shards: shards, BatchSize: 16, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
		if checkpointAt > 0 && i+1 == checkpointAt {
			if err := svc.Drain(); err != nil {
				t.Fatal(err)
			}
			if err := svc.Checkpoint(dir); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverMatchesReference is the core recovery differential: a service
// that checkpointed mid-stream and then crashed (Close stands in for the
// crash; Drain guarantees the WAL tail) must recover to exactly the serial
// reference state — under the original shard count and under different ones,
// which forces the partitions to rehash.
func TestRecoverMatchesReference(t *testing.T) {
	q := vwapSpec()
	events := symEvents(11, 5000, 17)
	dir := t.TempDir()
	buildDurableDir(t, dir, 3, 3000, events)
	want := serialReference(t, q, events)
	for _, shards := range []int{1, 2, 3, 5} {
		// Options.Dir is left empty: a read-only recovery that leaves the
		// checkpoint directory untouched, so every shard count sees it.
		rec, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		requireSameGroups(t, "recovered", groupedMap(rec), want)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverResumesService recovers with durability re-enabled, applies more
// events, crashes again, and recovers again: the full resume cycle, across a
// shard-count change, with auto-compaction running in the second life.
func TestRecoverResumesService(t *testing.T) {
	q := vwapSpec()
	first := symEvents(21, 2500, 13)
	dir := t.TempDir()
	buildDurableDir(t, dir, 3, 1500, first)

	rec, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 2, Dir: dir, CompactEvery: 400})
	if err != nil {
		t.Fatal(err)
	}
	second := symEvents(22, 2500, 13)
	for _, e := range second {
		if err := rec.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Drain(); err != nil {
		t.Fatal(err)
	}
	all := append(append([]engine.Event(nil), first...), second...)
	want := serialReference(t, q, all)
	requireSameGroups(t, "resumed", groupedMap(rec), want)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGroups(t, "re-recovered", groupedMap(rec2), want)
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALOnlyRecovery recovers a service that never checkpointed: generation
// 1, sequence 0, state rebuilt purely by replay.
func TestWALOnlyRecovery(t *testing.T) {
	q := vwapSpec()
	events := symEvents(5, 1500, 9)
	dir := t.TempDir()
	buildDurableDir(t, dir, 2, 0, events)
	rec, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGroups(t, "wal-only", groupedMap(rec), serialReference(t, q, events))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCompaction checks that CompactEvery actually rotates (the snapshot
// sequence advances and the WAL stays short) and that the compacted state
// still recovers exactly.
func TestAutoCompaction(t *testing.T) {
	q := vwapSpec()
	events := symEvents(9, 3000, 9)
	dir := t.TempDir()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, BatchSize: 16, Dir: dir, CompactEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rotated := false
	walEvents := 0
	for i := 0; i < 2; i++ {
		if h, _, err := checkpoint.ReadSnapshotFile(checkpoint.SnapPath(dir, 1, i)); err == nil && h.Seq >= 1 {
			rotated = true
		}
		// Count events, not records: each record is a group-committed batch
		// of length-prefixed event frames.
		_, _, err := checkpoint.ReadWAL(checkpoint.WALPath(dir, 1, i), func(rec []byte) error {
			return forEachWALEvent(rec, func([]byte) error { walEvents++; return nil })
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rotated {
		t.Fatal("no shard rotated a snapshot despite CompactEvery")
	}
	if walEvents >= len(events) {
		t.Fatalf("WALs hold %d events of %d: compaction did not bound replay", walEvents, len(events))
	}
	rec, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGroups(t, "compacted", groupedMap(rec), serialReference(t, q, events))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornWALTailRecovery truncates the log mid-record after a crash and
// checks recovery equals a twin that applied exactly the surviving prefix —
// the serving-layer end of the torn-tail property the checkpoint package's
// fuzzers establish for the framing.
func TestTornWALTailRecovery(t *testing.T) {
	q := vwapSpec()
	events := symEvents(13, 1200, 7)
	dir := t.TempDir()
	buildDurableDir(t, dir, 1, 0, events)

	path := checkpoint.WALPath(dir, 1, 0)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	// A record that survives truncation is a whole group-committed batch;
	// unpack its event frames in order.
	var surviving []engine.Event
	if _, _, err := checkpoint.ReadWAL(path, func(rec []byte) error {
		return forEachWALEvent(rec, func(p []byte) error {
			ev, err := engine.DecodeEvent(p)
			if err != nil {
				return err
			}
			surviving = append(surviving, ev)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if len(surviving) >= len(events) {
		t.Fatalf("truncation dropped nothing: %d of %d events survive", len(surviving), len(events))
	}
	rec, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGroups(t, "torn-tail", groupedMap(rec), serialReference(t, q, surviving))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGenerationFallback plants a torn higher generation next to a complete
// one (the on-disk shape of a crash mid-Checkpoint): recovery must fall back
// to the complete generation, and must fail outright when no complete
// generation remains.
func TestGenerationFallback(t *testing.T) {
	q := vwapSpec()
	events := symEvents(17, 1000, 7)
	dir := t.TempDir()
	buildDurableDir(t, dir, 2, len(events), events) // checkpoint at the end -> gen 2 complete
	want := serialReference(t, q, events)

	// A torn gen-3 snapshot: the prefix of a real snapshot file, cut before
	// its trailer, under the next generation's name.
	g2, err := os.ReadFile(checkpoint.SnapPath(dir, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpoint.SnapPath(dir, 3, 0), g2[:len(g2)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGroups(t, "fallback", groupedMap(rec), want)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the only complete generation: recovery must error rather than
	// silently serve damaged state.
	snap := checkpoint.SnapPath(dir, 2, 1)
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 2}); err == nil {
		t.Fatal("recovery from a corrupt sole generation succeeded")
	}
}

// TestExportCheckpoint snapshots an in-memory (WAL-less) service to a
// foreign directory and recovers from the export.
func TestExportCheckpoint(t *testing.T) {
	q := vwapSpec()
	events := symEvents(19, 1500, 11)
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 3, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	export := filepath.Join(t.TempDir(), "export")
	if err := svc.Checkpoint(export); err != nil {
		t.Fatal(err)
	}
	// The live service keeps running after an export.
	if err := svc.Apply(events[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverForQuery(export, q, []string{"sym"}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGroups(t, "export", groupedMap(rec), serialReference(t, q, events))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableErrors pins the error surface: Checkpoint after Close returns
// ErrClosed, New refuses a directory that already holds a checkpoint,
// Recover refuses a directory that does not, and Durable misconfiguration is
// rejected up front.
func TestDurableErrors(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Checkpoint(t.TempDir()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}

	dir := t.TempDir()
	buildDurableDir(t, dir, 2, 0, symEvents(3, 50, 3))
	if _, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "Recover") {
		t.Fatalf("New over an existing checkpoint = %v, want refusal pointing at Recover", err)
	}

	if _, err := RecoverForQuery(t.TempDir(), q, []string{"sym"}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "not a checkpoint directory") {
		t.Fatalf("Recover from empty dir = %v", err)
	}

	if _, err := Recover(dir, Config[engine.Event]{
		Partition: func(e engine.Event, buf []float64) []float64 { return append(buf, e.Tuple["sym"]) },
		New:       func([]float64) Executor[engine.Event] { panic("unused") },
	}); err == nil || !strings.Contains(err.Error(), "Restore") {
		t.Fatalf("Recover without Durable = %v", err)
	}

	if _, err := New(Config[engine.Event]{
		Partition: func(e engine.Event, buf []float64) []float64 { return append(buf, e.Tuple["sym"]) },
		New:       func([]float64) Executor[engine.Event] { panic("unused") },
		Durable:   &Durable[engine.Event]{Dir: t.TempDir()},
	}); err == nil || !strings.Contains(err.Error(), "EncodeEvent") {
		t.Fatalf("Durable.Dir without codec = %v", err)
	}
}
