package serve

import (
	"math"
	"testing"
	"time"

	"rpai/internal/engine"
)

// groupsIdentical compares grouped results bit-for-bit (Float64bits on keys
// and values) — the equality standard of the differential replication suite.
func groupsIdentical(a, b []engine.GroupResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Key) != len(b[i].Key) {
			return false
		}
		for k := range a[i].Key {
			if math.Float64bits(a[i].Key[k]) != math.Float64bits(b[i].Key[k]) {
				return false
			}
		}
		if math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
			return false
		}
	}
	return true
}

// viewCaughtUp reports whether the view has reached every target shard
// version.
func viewCaughtUp(v *View, target []ShardVersion) bool {
	have := map[int]uint64{}
	for _, sv := range v.Versions() {
		have[sv.Shard] = sv.Version
	}
	for _, sv := range target {
		if have[sv.Shard] < sv.Version {
			return false
		}
	}
	return true
}

// syncView applies frames until the view reaches target, failing on a gap or
// a timeout.
func syncView(t *testing.T, v *View, sub *Subscription, target []ShardVersion) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !viewCaughtUp(v, target) {
		select {
		case fr, ok := <-sub.Frames():
			if !ok {
				t.Fatal("frames channel closed before the view caught up")
			}
			if err := v.Apply(fr); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("timed out waiting for delta frames")
		}
	}
}

// TestSubscriptionReconstructs is the subscription half of the differential
// proof: a subscriber attached before (and another attached mid-stream
// through) a random insert/delete trace must reconstruct the service's
// grouped results bit-identically from its delta frames alone.
func TestSubscriptionReconstructs(t *testing.T) {
	q := vwapSpec()
	events := symEvents(11, 3000, 17)
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 3, BatchSize: 16, QueueLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	early, err := svc.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer early.Close()
	earlyView := NewView()

	var late *Subscription
	lateView := NewView()
	for i := 0; i < len(events); i += 100 {
		end := i + 100
		if end > len(events) {
			end = len(events)
		}
		if err := svc.ApplyBatch(events[i:end]); err != nil {
			t.Fatal(err)
		}
		if i == 1500 {
			// Mid-stream attach: the seed Full frame must make the late view
			// equivalent to the early one without any history.
			if late, err = svc.Subscribe(SubOptions{Buffer: 4}); err != nil {
				t.Fatal(err)
			}
			defer late.Close()
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	target := svc.ShardVersions()
	want := svc.ResultGrouped()

	syncView(t, earlyView, early, target)
	if got := earlyView.Grouped(); !groupsIdentical(got, want) {
		t.Fatalf("early subscriber view diverged from pull:\n got %v\nwant %v", got, want)
	}
	syncView(t, lateView, late, target)
	if got := lateView.Grouped(); !groupsIdentical(got, want) {
		t.Fatalf("late subscriber view diverged from pull:\n got %v\nwant %v", got, want)
	}
}

// TestSubscriptionBackpressure stalls a Buffer-1 subscriber under sustained
// ingest, then lets it drain: it must converge on the newest version (never a
// stale final state), its per-shard frame versions must be strictly
// increasing (never out-of-order), and coalescing must have collapsed the
// backlog into far fewer frames than publications.
func TestSubscriptionBackpressure(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 1, BatchSize: 4, QueueLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sub, err := svc.Subscribe(SubOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Stall the subscriber: nobody reads sub.Frames while ingest runs.
	events := symEvents(23, 5000, 9)
	for i := 0; i < len(events); i += 8 {
		end := i + 8
		if end > len(events) {
			end = len(events)
		}
		if err := svc.ApplyBatch(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	flushed := svc.Stats()[0].Flushed

	// Bounded memory: the pending slot coalesces by key, so it can never hold
	// more groups than the shard has partitions.
	ss := sub.shards[0]
	ss.mu.Lock()
	pending := len(ss.groups)
	ss.mu.Unlock()
	if parts := svc.Stats()[0].Partitions; pending > parts {
		t.Fatalf("pending slot holds %d groups, shard has %d partitions", pending, parts)
	}

	// Drain: versions strictly increasing, convergence on the newest state.
	view := NewView()
	var lastVer uint64
	frames := 0
	deadline := time.After(10 * time.Second)
	target := svc.ShardVersions()
	for !viewCaughtUp(view, target) {
		select {
		case fr, ok := <-sub.Frames():
			if !ok {
				t.Fatal("frames closed early")
			}
			if fr.Version <= lastVer {
				t.Fatalf("out-of-order frame: version %d after %d", fr.Version, lastVer)
			}
			lastVer = fr.Version
			if err := view.Apply(fr); err != nil {
				t.Fatal(err)
			}
			frames++
		case <-deadline:
			t.Fatal("stalled subscriber never observed the newest version")
		}
	}
	if got, want := view.Grouped(), svc.ResultGrouped(); !groupsIdentical(got, want) {
		t.Fatalf("stalled subscriber converged on the wrong state")
	}
	if uint64(frames) >= flushed {
		t.Fatalf("no coalescing: %d frames for %d publications", frames, flushed)
	}
}

// TestVersionMonotonicPulls is the regression for the latent gap this layer
// closes: two successive Version pulls must never decrease, even while every
// shard is publishing concurrently.
func TestVersionMonotonicPulls(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 4, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		events := symEvents(5, 20000, 31)
		for i := range events {
			select {
			case <-stop:
				return
			default:
			}
			if err := svc.Apply(events[i]); err != nil {
				return
			}
		}
	}()
	var last uint64
	for i := 0; i < 50000; i++ {
		v := svc.Version()
		if v < last {
			t.Fatalf("version went backwards: %d after %d", v, last)
		}
		last = v
	}
	close(stop)
	<-done
}

// TestDrainVersionBarrier checks Drain is a version barrier: the version
// after Drain is strictly above every pre-write version, and a reader that
// observes the post-Drain version observes all acknowledged writes.
func TestDrainVersionBarrier(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	events := symEvents(3, 500, 7)
	want := serialReference(t, q, events)

	v0 := svc.Version()
	for _, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	v1 := svc.Version()
	if v1 <= v0 {
		t.Fatalf("Drain did not advance the version: %d -> %d", v0, v1)
	}
	groups := svc.ResultGrouped()
	if len(groups) != len(want) {
		t.Fatalf("post-Drain read: %d groups, want %d", len(groups), len(want))
	}
	for _, g := range groups {
		if want[g.Key[0]] != g.Value {
			t.Fatalf("post-Drain read: group %v = %v, want %v", g.Key, g.Value, want[g.Key[0]])
		}
	}
	// Quiesced: a second pull observes an unchanged (never smaller) version.
	if v2 := svc.Version(); v2 < v1 {
		t.Fatalf("version decreased across pulls: %d after %d", v2, v1)
	}
}

// TestSubscribeFilter restricts a subscription to two partition keys and
// checks frames carry only those groups, matching a filtered pull.
func TestSubscribeFilter(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	keys := [][]float64{{2}, {5}}
	sub, err := svc.Subscribe(SubOptions{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	events := symEvents(41, 2000, 11)
	if err := svc.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	view := NewView()
	syncView(t, view, sub, svc.ShardVersions())

	var want []engine.GroupResult
	for _, g := range svc.ResultGrouped() {
		if g.Key[0] == 2 || g.Key[0] == 5 {
			want = append(want, g)
		}
	}
	if got := view.Grouped(); !groupsIdentical(got, want) {
		t.Fatalf("filtered view %v, want %v", got, want)
	}
}

// TestSubscribeResume exercises the three resume outcomes: a current reader
// resumes without a reseed, a lagging reader is reseeded with a Full frame,
// and a mismatched epoch always reseeds.
func TestSubscribeResume(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 1, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sub, err := svc.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events := symEvents(9, 1000, 5)
	if err := svc.ApplyBatch(events[:600]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	view := NewView()
	syncView(t, view, sub, svc.ShardVersions())
	sub.Close()

	// Current resume: no writes happened, so the first frame after new writes
	// must be incremental and apply onto the existing view without a gap.
	sub2, err := svc.Subscribe(SubOptions{Resume: view.Versions(), ResumeEpoch: svc.Epoch()})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ApplyBatch(events[600:800]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	sawFull := false
	deadline := time.After(10 * time.Second)
	target := svc.ShardVersions()
	for !viewCaughtUp(view, target) {
		select {
		case fr := <-sub2.Frames():
			sawFull = sawFull || fr.Full
			if err := view.Apply(fr); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("resumed subscriber stalled")
		}
	}
	if sawFull {
		t.Fatal("current resume was reseeded with a Full frame")
	}
	if got, want := view.Grouped(), svc.ResultGrouped(); !groupsIdentical(got, want) {
		t.Fatal("resumed view diverged")
	}
	sub2.Close()

	// Lagging resume: writes happened since the resumed versions, so the
	// subscription must reseed with a Full frame.
	if err := svc.ApplyBatch(events[800:]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	sub3, err := svc.Subscribe(SubOptions{Resume: view.Versions(), ResumeEpoch: svc.Epoch()})
	if err != nil {
		t.Fatal(err)
	}
	if fr := <-sub3.Frames(); !fr.Full {
		t.Fatal("lagging resume did not reseed with a Full frame")
	}
	sub3.Close()

	// Epoch mismatch: always a Full reseed, even at matching versions.
	sub4, err := svc.Subscribe(SubOptions{Resume: svc.ShardVersions(), ResumeEpoch: svc.Epoch() + 1})
	if err != nil {
		t.Fatal(err)
	}
	if fr := <-sub4.Frames(); !fr.Full {
		t.Fatal("epoch-mismatched resume did not reseed with a Full frame")
	}
	sub4.Close()
}

// TestSubscribeAllocGuard bounds the steady-state cost a stalled subscriber
// imposes on the ingest path: merging a publication into the pending slot
// must reuse the slot's map, not allocate per publication. The ceiling is per
// 64-event batch, in the style of TestAllocGuardApplyBatch.
func TestSubscribeAllocGuard(t *testing.T) {
	svc, err := New(Config[engine.Event]{
		Shards: 1,
		Partition: func(e engine.Event, buf []float64) []float64 {
			return append(buf, e.Tuple["g"])
		},
		New: func([]float64) Executor[engine.Event] { return &sumExec{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sub, err := svc.Subscribe(SubOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	batch := make([]engine.Event, 64)
	for i := range batch {
		batch[i] = engine.Insert(map[string]float64{"g": float64(i % 4), "v": float64(i)})
	}
	for i := 0; i < 8; i++ {
		if err := svc.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	const ceiling = 24.0
	if got := testing.AllocsPerRun(200, func() {
		if err := svc.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}); got > ceiling {
		t.Errorf("ApplyBatch with a stalled subscriber allocates %.1f per batch, ceiling %.0f", got, ceiling)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
}
