package serve

import (
	"math/rand"
	"testing"

	"rpai/internal/engine"
)

// chunkEvents cuts events into consecutive chunks of 1..max events.
func chunkEvents(events []engine.Event, rng *rand.Rand, max int) [][]engine.Event {
	var out [][]engine.Event
	for len(events) > 0 {
		n := 1 + rng.Intn(max)
		if n > len(events) {
			n = len(events)
		}
		out = append(out, events[:n:n])
		events = events[n:]
	}
	return out
}

// TestApplyBatchMatchesApply is the serving-layer batching contract: feeding
// a trace through ApplyBatch in arbitrary chunks leaves exactly the state of
// feeding it event by event through Apply, for any shard count. Chunks are
// staged through a reused scratch slice that is overwritten between calls,
// pinning the documented copy semantics (the service must not retain the
// caller's slice).
func TestApplyBatchMatchesApply(t *testing.T) {
	q := vwapSpec()
	events := symEvents(11, 3000, 17)
	want := serialReference(t, q, events)
	for _, shards := range []int{1, 3, 4} {
		for _, max := range []int{1, 7, 64, 300} {
			svc, err := ForQuery(q, []string{"sym"}, Options{Shards: shards, BatchSize: 32, QueueLen: 256})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(shards*1000 + max)))
			var scratch []engine.Event
			for _, chunk := range chunkEvents(events, rng, max) {
				scratch = append(scratch[:0], chunk...)
				if err := svc.ApplyBatch(scratch); err != nil {
					t.Fatal(err)
				}
				// Overwrite the scratch storage; the service must have copied.
				for i := range scratch {
					scratch[i] = engine.Event{}
				}
			}
			if err := svc.Drain(); err != nil {
				t.Fatal(err)
			}
			requireSameGroups(t, "batched", groupedMap(svc), want)
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestApplyBatchDurableRecovery drives a durable service exclusively through
// ApplyBatch — so WAL records are genuinely multi-event group commits — and
// checks recovery replays the framed batches back to the same state.
func TestApplyBatchDurableRecovery(t *testing.T) {
	q := vwapSpec()
	events := symEvents(29, 1500, 9)
	dir := t.TempDir()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, BatchSize: 32, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for _, chunk := range chunkEvents(events, rng, 48) {
		if err := svc.ApplyBatch(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverForQuery(dir, q, []string{"sym"}, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGroups(t, "recovered", groupedMap(rec), serialReference(t, q, events))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchEdgeCases covers the trivial paths: an empty batch is a no-op
// and a batch after Close is rejected like Apply.
func TestApplyBatchEdgeCases(t *testing.T) {
	svc, err := ForQuery(vwapSpec(), []string{"sym"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ApplyBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	ev := engine.Insert(map[string]float64{"sym": 1, "price": 2, "volume": 3})
	if err := svc.ApplyBatch([]engine.Event{ev}); err != ErrClosed {
		t.Fatalf("ApplyBatch after Close = %v, want ErrClosed", err)
	}
}

// TestBatchSizeConfig pins the BatchSize contract: negative values are
// rejected, zero selects the default of 64, and the effective value is
// surfaced per shard in ShardStats.
func TestBatchSizeConfig(t *testing.T) {
	if _, err := ForQuery(vwapSpec(), []string{"sym"}, Options{BatchSize: -1}); err == nil {
		t.Fatal("negative BatchSize accepted")
	}
	for _, tc := range []struct{ in, want int }{{0, 64}, {16, 16}} {
		svc, err := ForQuery(vwapSpec(), []string{"sym"}, Options{Shards: 2, BatchSize: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range svc.Stats() {
			if st.BatchSize != tc.want {
				t.Fatalf("BatchSize %d: shard %d surfaces %d, want %d", tc.in, st.Shard, st.BatchSize, tc.want)
			}
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
