package serve

import (
	"fmt"
	"sync"

	"rpai/internal/engine"
)

// View materializes a subscription's frame stream back into grouped results:
// feed every received DeltaFrame to Apply and Grouped returns exactly what
// ResultGrouped would have returned on the service at the same per-shard
// versions. It detects gaps — an incremental frame whose Base is not the
// shard's current version cannot be applied — so the differential tests can
// assert the protocol never requires a frame the subscriber did not get.
type View struct {
	mu     sync.Mutex
	shards map[int]*viewShard
}

type viewShard struct {
	version uint64
	groups  map[string]engine.GroupResult
}

// NewView returns an empty view (every shard at version 0).
func NewView() *View {
	return &View{shards: make(map[int]*viewShard)}
}

// Apply folds one frame into the view. A Full frame replaces the shard's
// state from any base; an incremental frame upserts and must extend the
// shard's current version exactly.
func (v *View) Apply(f DeltaFrame) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	vs := v.shards[f.Shard]
	if vs == nil {
		vs = &viewShard{groups: make(map[string]engine.GroupResult)}
		v.shards[f.Shard] = vs
	}
	if f.Version < vs.version {
		return fmt.Errorf("serve: view shard %d: frame version %d behind current %d", f.Shard, f.Version, vs.version)
	}
	if f.Full {
		clear(vs.groups)
	} else if f.Base != vs.version {
		return fmt.Errorf("serve: view shard %d: delta gap: frame base %d, view at %d", f.Shard, f.Base, vs.version)
	}
	for _, g := range f.Groups {
		vs.groups[string(encodeKey(nil, g.Key))] = g
	}
	vs.version = f.Version
	return nil
}

// Grouped returns the view's merged grouped results, sorted by partition key
// like Service.ResultGrouped.
func (v *View) Grouped() []engine.GroupResult {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []engine.GroupResult
	for _, vs := range v.shards {
		for _, g := range vs.groups {
			out = append(out, g)
		}
	}
	sortGroups(out)
	return out
}

// Version returns the sum of the view's shard versions, comparable with
// Service.Version at the same point in the stream.
func (v *View) Version() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var total uint64
	for _, vs := range v.shards {
		total += vs.version
	}
	return total
}

// Versions returns the view's per-shard versions, the resume argument for a
// reconnecting subscriber (pair with the service epoch).
func (v *View) Versions() []ShardVersion {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]ShardVersion, 0, len(v.shards))
	for i, vs := range v.shards {
		out = append(out, ShardVersion{Shard: i, Version: vs.version})
	}
	return out
}
