package serve

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"rpai/internal/aggindex"
	"rpai/internal/engine"
)

// TestParallelIngestDifferential is the multicore half of the differential
// suite: many producer goroutines apply partition-disjoint batches at
// GOMAXPROCS>1, and the drained grouped results must be bit-identical to a
// sequential single-goroutine apply of the same trace — for both RPAI
// representations. Partition disjointness is the load-bearing property: each
// producer owns the partitions where sym%producers matches its index, so
// within every partition the event order is the trace order no matter how the
// scheduler interleaves producers, and float non-associativity cannot leak
// into the comparison.
func TestParallelIngestDifferential(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 2 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	const (
		producers  = 8
		events     = 20000
		partitions = 97
		batch      = 37 // deliberately unaligned with BatchSize below
	)
	q := vwapSpec()
	trace := symEvents(42, events, partitions)

	for _, kind := range []aggindex.Kind{aggindex.KindArena, aggindex.KindRPAI} {
		t.Run(string(kind), func(t *testing.T) {
			// Sequential reference on the same representation and shard count,
			// applied as one goroutine's worth of batches.
			ref := subFuzzService(t, q, 4, kind)
			defer ref.Close()
			for lo := 0; lo < len(trace); lo += batch {
				hi := min(lo+batch, len(trace))
				if err := ref.ApplyBatch(trace[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.Drain(); err != nil {
				t.Fatal(err)
			}
			want := map[float64]uint64{}
			for _, g := range ref.ResultGrouped() {
				want[g.Key[0]] = math.Float64bits(g.Value)
			}
			wantTotal := math.Float64bits(ref.Result())

			// Parallel run: split the trace into producer-owned partition
			// classes, preserving trace order within each class.
			svc := subFuzzService(t, q, 4, kind)
			defer svc.Close()
			slices := make([][]engine.Event, producers)
			for _, e := range trace {
				p := int(uint64(e.Tuple["sym"])) % producers
				slices[p] = append(slices[p], e)
			}
			var wg sync.WaitGroup
			for _, own := range slices {
				wg.Add(1)
				go func(own []engine.Event) {
					defer wg.Done()
					for lo := 0; lo < len(own); lo += batch {
						hi := min(lo+batch, len(own))
						if err := svc.ApplyBatch(own[lo:hi]); err != nil {
							t.Errorf("ApplyBatch: %v", err)
							return
						}
					}
				}(own)
			}
			wg.Wait()
			if err := svc.Drain(); err != nil {
				t.Fatal(err)
			}

			got := svc.ResultGrouped()
			if len(got) != len(want) {
				t.Fatalf("parallel run has %d partitions, sequential %d", len(got), len(want))
			}
			for _, g := range got {
				w, ok := want[g.Key[0]]
				if !ok {
					t.Fatalf("partition %v missing from sequential run", g.Key[0])
				}
				if math.Float64bits(g.Value) != w {
					t.Fatalf("partition %v: parallel %x, sequential %x (not bit-identical)",
						g.Key[0], math.Float64bits(g.Value), w)
				}
			}
			if gt := math.Float64bits(svc.Result()); gt != wantTotal {
				t.Fatalf("total: parallel %x, sequential %x", gt, wantTotal)
			}
		})
	}
}

// TestStatsRaceDuringApplyBatch hammers Stats() from reader goroutines while
// producers push ApplyBatch traffic. Run under -race this pins the
// requirement that every counter Stats reads is synchronized with the shard
// workers that write it; without -race it still checks monotonicity of the
// applied counter across snapshots.
func TestStatsRaceDuringApplyBatch(t *testing.T) {
	const (
		producers = 4
		readers   = 4
		batches   = 150
		batch     = 32
	)
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 4, BatchSize: 16, QueueLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var lastApplied uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var applied uint64
				for _, s := range svc.Stats() {
					applied += s.Applied
					if s.Partitions < 0 {
						t.Errorf("negative partition count: %+v", s)
						return
					}
				}
				if applied < lastApplied {
					t.Errorf("applied went backwards: %d -> %d", lastApplied, applied)
					return
				}
				lastApplied = applied
			}
		}()
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(seed int64) {
			defer pwg.Done()
			trace := producerTrace(seed, batches*batch, 13)
			for lo := 0; lo < len(trace); lo += batch {
				if err := svc.ApplyBatch(trace[lo : lo+batch]); err != nil {
					t.Errorf("ApplyBatch: %v", err)
					return
				}
			}
		}(int64(7 + p))
	}
	pwg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	rwg.Wait()

	var applied uint64
	for _, s := range svc.Stats() {
		applied += s.Applied
	}
	if want := uint64(producers * batches * batch); applied != want {
		t.Fatalf("applied = %d, want %d", applied, want)
	}
}
