package serve

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// countEvent is a minimal event for the routing tests: the partition key is
// carried verbatim.
type countEvent struct{ key float64 }

// countExec counts applied events per partition.
type countExec struct{ n float64 }

func (c *countExec) Apply(countEvent) { c.n++ }
func (c *countExec) Result() float64  { return c.n }

func countConfig(shards, queueLen int) Config[countEvent] {
	return Config[countEvent]{
		Shards:    shards,
		QueueLen:  queueLen,
		BatchSize: 4,
		Partition: func(e countEvent, buf []float64) []float64 { return append(buf, e.key) },
		New:       func([]float64) Executor[countEvent] { return &countExec{} },
	}
}

// TestKeyNormalization pins the fix for -0/+0 and NaN-payload partition keys:
// all bit patterns of one logical key must hash to the same shard and encode
// to the same partition, so the pair of events lands in a single partition
// with count 2 — never in two partitions of one event each.
func TestKeyNormalization(t *testing.T) {
	nan := func(bits uint64) float64 { return math.Float64frombits(bits) }
	cases := []struct {
		name string
		a, b float64
	}{
		{"neg-zero vs pos-zero", math.Copysign(0, -1), 0},
		{"pos-zero vs neg-zero", 0, math.Copysign(0, -1)},
		{"canonical NaN vs payload NaN", math.NaN(), nan(0x7ff8000000000002)},
		{"two payload NaNs", nan(0x7ff8000000000042), nan(0xfff8000000000017)},
		{"signalling vs quiet NaN", nan(0x7ff0000000000001), math.NaN()},
		{"plain key control", 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Many shards so a hash mismatch almost surely splits the pair.
			svc, err := New(countConfig(16, 64))
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			if err := svc.Apply(countEvent{tc.a}); err != nil {
				t.Fatal(err)
			}
			if err := svc.Apply(countEvent{tc.b}); err != nil {
				t.Fatal(err)
			}
			if err := svc.Drain(); err != nil {
				t.Fatal(err)
			}
			groups := svc.ResultGrouped()
			if len(groups) != 1 {
				t.Fatalf("keys %x/%x split into %d partitions, want 1",
					math.Float64bits(tc.a), math.Float64bits(tc.b), len(groups))
			}
			if groups[0].Value != 2 {
				t.Fatalf("partition count = %v, want 2", groups[0].Value)
			}
			var parts int
			for _, st := range svc.Stats() {
				parts += st.Partitions
			}
			if parts != 1 {
				t.Fatalf("stats report %d partitions, want 1", parts)
			}
		})
	}
}

// TestNormalizeValsTable pins the normalization function itself, bit for bit.
func TestNormalizeValsTable(t *testing.T) {
	canonNaN := math.Float64bits(math.NaN())
	cases := []struct {
		name string
		in   uint64
		want uint64
	}{
		{"neg zero", 0x8000000000000000, 0},
		{"pos zero", 0, 0},
		{"payload NaN", 0x7ff8000000000002, canonNaN},
		{"negative NaN", 0xfff8000000000099, canonNaN},
		{"one", math.Float64bits(1), math.Float64bits(1)},
		{"neg inf", math.Float64bits(math.Inf(-1)), math.Float64bits(math.Inf(-1))},
	}
	for _, tc := range cases {
		got := normalizeVals([]float64{math.Float64frombits(tc.in)})
		if bits := math.Float64bits(got[0]); bits != tc.want {
			t.Errorf("%s: normalize(%#x) = %#x, want %#x", tc.name, tc.in, bits, tc.want)
		}
	}
}

// gateExec blocks every Apply on the gate channel; the admission tests use it
// to wedge a shard worker deterministically.
type gateExec struct {
	gate <-chan struct{}
	n    float64
}

func (g *gateExec) Apply(countEvent) { <-g.gate; g.n++ }
func (g *gateExec) Result() float64  { return g.n }

// TestTryApplyShedsAndCounts wedges a one-shard service and checks TryApply
// sheds with ErrBusy once the queue is full, the Rejected counter matches the
// shed count, the queue depth never exceeds QueueLen, and blocked Apply time
// shows up in EnqueueWaitNS.
func TestTryApplyShedsAndCounts(t *testing.T) {
	gate := make(chan struct{})
	cfg := countConfig(1, 4)
	cfg.BatchSize = 1
	cfg.New = func([]float64) Executor[countEvent] { return &gateExec{gate: gate} }
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// One event wedges the worker; QueueLen more fill the channel.
	total := 1 + cfg.QueueLen
	for i := 0; i < total; i++ {
		if err := svc.Apply(countEvent{1}); err != nil {
			t.Fatal(err)
		}
	}
	var shed int
	for i := 0; i < 7; i++ {
		err := svc.TryApply(countEvent{1})
		if err == nil {
			total++ // raced a batch drain; the event was accepted
			continue
		}
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("TryApply error = %v, want ErrBusy", err)
		}
		shed++
	}
	if shed == 0 {
		t.Fatal("no TryApply call was shed against a wedged shard")
	}
	st := svc.Stats()[0]
	if st.Rejected != uint64(shed) {
		t.Fatalf("Rejected = %d, want %d", st.Rejected, shed)
	}
	if st.QueueDepth > cfg.QueueLen {
		t.Fatalf("queue depth %d exceeds QueueLen %d", st.QueueDepth, cfg.QueueLen)
	}

	// A blocking Apply against the full queue must record its wait once a
	// slot frees up.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := svc.Apply(countEvent{1}); err == nil {
			total++
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate) // release the worker; everything drains
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	st = svc.Stats()[0]
	if st.EnqueueWaitNS == 0 {
		t.Fatal("EnqueueWaitNS = 0 after a blocked Apply")
	}
	if got := svc.Result(); got != float64(total) {
		t.Fatalf("Result = %v, want %v", got, total)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
