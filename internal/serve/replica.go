package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rpai/internal/checkpoint"
)

// Replica is a read-only follower of a primary Service's checkpoint
// directory. It boots from the newest complete snapshot generation, then
// tails the primary's per-shard RPWL WALs, applying each group-committed
// batch record through ApplyBatch — so every state the replica ever publishes
// is a batch-boundary prefix of the primary's history. When the primary
// rotates a WAL (auto-compaction or Checkpoint), the replica rebases: it
// reloads the newest on-disk snapshots, swaps them in wholesale, and pushes
// Full frames to its subscribers, because a truncated WAL may have carried
// records the tail never saw. State only moves forward across a rebase — the
// rotated snapshot contains everything the rotated-away WAL held.
//
// Reads (Service().Result, ResultGrouped, Subscribe) are served from the
// replica's own shards; writes must not be sent to the embedded service —
// the wire layer fronts replicas in read-only mode and sheds writes with a
// typed error.
type Replica[E any] struct {
	svc  *Service[E]
	dir  string
	d    *Durable[E]
	poll time.Duration

	applied atomic.Uint64 // WAL batch records applied since boot
	rebases atomic.Uint64 // snapshot rebases performed (including boot)
	gen     atomic.Uint64 // generation currently tailed

	mu    sync.Mutex
	err   error // sticky tailer error (corruption, decode failure)
	tails []*tailState

	quit chan struct{}
	done chan struct{}
}

// tailState is the replica's cursor over one primary shard's WAL.
type tailState struct {
	shard int
	seq   uint64 // sequence of the state installed for this shard
	tail  *checkpoint.WALTail
	skip  bool // WAL is stale (seq below ours): discard records until rotation
}

// ReplicaPollDefault is the tail polling interval when the caller passes 0.
const ReplicaPollDefault = 5 * time.Millisecond

// NewReplica boots a read replica of the primary whose data directory is
// dir. cfg is the same configuration the primary runs (Durable must provide
// Restore and DecodeEvent); cfg.Durable.Dir is ignored — a replica never
// writes WALs of its own. The replica's shard count may differ from the
// primary's; partitions are rehashed like Recover.
func NewReplica[E any](dir string, cfg Config[E], poll time.Duration) (*Replica[E], error) {
	if cfg.Durable == nil || cfg.Durable.Restore == nil || cfg.Durable.DecodeEvent == nil {
		return nil, errors.New("serve: NewReplica requires Config.Durable with Restore and DecodeEvent")
	}
	if _, err := checkpoint.ReadManifest(dir); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("serve: %s is not a checkpoint directory", dir)
		}
		return nil, err
	}
	if poll <= 0 {
		poll = ReplicaPollDefault
	}
	// The replica applies tailed events through the normal ingest path but
	// must never log them again: strip the WAL dir from a copy of Durable.
	d := *cfg.Durable
	d.Dir = ""
	cfg.Durable = &d
	svc, err := newService(cfg, false)
	if err != nil {
		return nil, err
	}
	r := &Replica[E]{svc: svc, dir: dir, d: &d, poll: poll,
		quit: make(chan struct{}), done: make(chan struct{})}
	if err := r.rebase(); err != nil {
		svc.Close()
		return nil, err
	}
	go r.run()
	return r, nil
}

// Service returns the replica's serving surface for reads and subscriptions.
func (r *Replica[E]) Service() *Service[E] { return r.svc }

// Applied reports how many WAL batch records the tailer has applied.
func (r *Replica[E]) Applied() uint64 { return r.applied.Load() }

// Rebases reports how many times the replica reloaded snapshots (boot
// included) — each one corresponds to a primary WAL rotation it observed.
func (r *Replica[E]) Rebases() uint64 { return r.rebases.Load() }

// Generation reports the checkpoint generation currently tailed.
func (r *Replica[E]) Generation() uint64 { return r.gen.Load() }

// Err returns the tailer's sticky error, if any: corruption or a decode
// failure stops tailing (the replica keeps serving its last state).
func (r *Replica[E]) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close stops the tailer and shuts the embedded service down.
func (r *Replica[E]) Close() error {
	close(r.quit)
	<-r.done
	err := r.svc.Close()
	if terr := r.Err(); terr != nil {
		return errors.Join(terr, err)
	}
	return err
}

// rebase (re)loads the newest recoverable snapshot generation from the
// primary's directory and swaps it into the shard workers wholesale. The
// swapped-in state supersedes whatever the tailer had applied — snapshots are
// written at batch boundaries and include every event of any WAL they
// retired, so state moves forward. Each worker's next publication carries a
// Full frame (ws.publishFull) because the previous published state is not a
// valid delta base for it.
func (r *Replica[E]) rebase() error {
	gens, err := scanGens(r.dir)
	if err != nil {
		return err
	}
	var (
		gen     uint64
		loaded  []recoveredShard[E]
		lastErr error
	)
	for _, g := range gens {
		l, err := loadGen(r.dir, g, r.d)
		if err != nil {
			lastErr = err
			continue
		}
		gen, loaded = g, l
		break
	}
	if loaded == nil {
		if lastErr != nil {
			return fmt.Errorf("serve: replica: no recoverable generation in %s: %w", r.dir, lastErr)
		}
		return fmt.Errorf("serve: replica: no checkpoint files in %s", r.dir)
	}
	installs := make([][]*partition[E], len(r.svc.shards))
	for _, rs := range loaded {
		for _, p := range rs.parts {
			p.vals = normalizeVals(p.vals)
			t := int(hashVals(p.vals) % uint64(len(r.svc.shards)))
			installs[t] = append(installs[t], p)
		}
	}
	for i, list := range installs {
		list := list
		if err := r.svc.control(i, func(ws *workerState[E]) error {
			for _, p := range list {
				p.ekey = string(encodeKey(nil, p.vals))
			}
			ws.resetParts(list)
			r.svc.shards[ws.idx].partitions.Store(int64(len(ws.parts)))
			ws.publishFull = true
			return nil
		}); err != nil {
			return err
		}
	}
	r.mu.Lock()
	for _, ts := range r.tails {
		if ts.tail != nil {
			ts.tail.Close()
		}
	}
	r.tails = make([]*tailState, len(loaded))
	for i, rs := range loaded {
		r.tails[i] = &tailState{shard: i, seq: rs.seq}
	}
	r.mu.Unlock()
	r.gen.Store(gen)
	r.rebases.Add(1)
	return nil
}

// run is the tailer loop: poll the MANIFEST for generation changes, poll
// each shard's WAL tail for new batch records, apply them, and rebase on any
// rotation signal.
func (r *Replica[E]) run() {
	defer close(r.done)
	defer func() {
		r.mu.Lock()
		for _, ts := range r.tails {
			if ts.tail != nil {
				ts.tail.Close()
				ts.tail = nil
			}
		}
		r.mu.Unlock()
	}()
	tick := time.NewTicker(r.poll)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
		}
		if err := r.step(); err != nil {
			r.mu.Lock()
			r.err = err
			r.mu.Unlock()
			return
		}
	}
}

// step advances the tailer by one poll round. It returns nil on transient
// conditions (torn tails, mid-rotation windows) and an error only for
// unrecoverable corruption or decode failures.
func (r *Replica[E]) step() error {
	// A generation change replaces the WAL paths outright (the old files are
	// unlinked, so open tails would idle forever): rebase when the MANIFEST
	// moves. A rebase that fails mid-rotation is retried next round.
	if m, err := checkpoint.ReadManifest(r.dir); err == nil && m.Gen != r.gen.Load() {
		if err := r.rebase(); err != nil {
			return nil
		}
	}
	needRebase := false
	for _, ts := range r.tails {
		if ts.tail == nil {
			tail, err := checkpoint.OpenWALTail(checkpoint.WALPath(r.dir, r.gen.Load(), ts.shard))
			if err != nil {
				// Not created yet or header still in flight; retry later.
				continue
			}
			h := tail.Header()
			switch {
			case h.Seq == ts.seq:
				ts.tail, ts.skip = tail, false
			case h.Seq < ts.seq:
				// Stale WAL from a crash mid-rotation: everything it holds is
				// already inside our snapshot. Keep the tail to detect the
				// rotation, but discard its records.
				ts.tail, ts.skip = tail, true
			default:
				// The WAL starts after our snapshot: we missed a rotation.
				tail.Close()
				needRebase = true
				continue
			}
		}
		for {
			rec, err := ts.tail.Next()
			switch {
			case err == nil:
				if ts.skip {
					continue
				}
				if err := r.applyRecord(rec); err != nil {
					return fmt.Errorf("serve: replica shard %d: %w", ts.shard, err)
				}
				r.applied.Add(1)
				continue
			case errors.Is(err, checkpoint.ErrNoRecord):
				// Torn or quiet tail; come back next poll.
			case errors.Is(err, checkpoint.ErrTailRotated):
				ts.tail.Close()
				ts.tail = nil
				needRebase = true
			default:
				return fmt.Errorf("serve: replica shard %d WAL: %w", ts.shard, err)
			}
			break
		}
	}
	if needRebase {
		// Ignore a failed rebase: the primary may be mid-rotation; the next
		// round retries against a settled directory.
		if err := r.rebase(); err != nil {
			return nil
		}
	}
	return nil
}

// applyRecord decodes one group-committed WAL record and applies it as a
// single ApplyBatch call, so the replica publishes only batch-boundary
// states — a box is always committed whole.
func (r *Replica[E]) applyRecord(rec []byte) error {
	var events []E
	if err := forEachWALEvent(rec, func(p []byte) error {
		ev, err := r.d.DecodeEvent(p)
		if err != nil {
			return err
		}
		events = append(events, ev)
		return nil
	}); err != nil {
		return err
	}
	return r.svc.ApplyBatch(events)
}
