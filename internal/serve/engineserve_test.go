package serve

import (
	"testing"

	"rpai/internal/engine"
	"rpai/internal/query"
)

// TestForQueryMissingPartitionColumn pins the semantics of events whose
// tuples lack the partition column: query.Tuple is a map, so the missing
// column reads as 0 and all such events share the zero-keyed partition —
// they are accepted, not dropped or refused. The test mixes keyed and
// unkeyed events and checks the unkeyed ones aggregate exactly like an
// explicit sym=0 partition would.
func TestForQueryMissingPartitionColumn(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 3, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	withKey := symEvents(31, 400, 5) // sym in 0..4, including explicit sym=0
	var noKey []engine.Event
	for _, e := range symEvents(32, 200, 1) {
		tup := query.Tuple{}
		for c, v := range e.Tuple {
			if c != "sym" {
				tup[c] = v
			}
		}
		noKey = append(noKey, engine.Event{X: e.X, Tuple: tup})
	}
	for _, e := range withKey {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range noKey {
		if err := svc.Apply(e); err != nil {
			t.Fatalf("event without partition column rejected: %v", err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Reference: the keyless events join the sym=0 partition.
	want := serialReference(t, q, append(append([]engine.Event(nil), withKey...), noKey...))
	got := groupedMap(svc)
	if len(got) != len(want) {
		t.Fatalf("%d partitions, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("partition %v = %v, want %v", k, got[k], w)
		}
	}
}

// TestDrainBeforeAnyEvent pins the empty-service surface: Drain with zero
// events applied must return promptly with no error, Result must be 0, and
// ResultGrouped must be empty (no phantom partitions) — for both a plain and
// a durable service, whose WAL machinery must tolerate an empty first batch.
func TestDrainBeforeAnyEvent(t *testing.T) {
	run := func(t *testing.T, opt Options) {
		svc, err := ForQuery(vwapSpec(), []string{"sym"}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Drain(); err != nil {
			t.Fatalf("Drain on empty service: %v", err)
		}
		if got := svc.Result(); got != 0 {
			t.Fatalf("empty Result = %v, want 0", got)
		}
		if groups := svc.ResultGrouped(); len(groups) != 0 {
			t.Fatalf("empty ResultGrouped has %d groups", len(groups))
		}
		for _, st := range svc.Stats() {
			if st.Applied != 0 || st.Partitions != 0 {
				t.Fatalf("empty service stats: %+v", st)
			}
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("in-memory", func(t *testing.T) { run(t, Options{Shards: 4}) })
	t.Run("durable", func(t *testing.T) { run(t, Options{Shards: 4, Dir: t.TempDir()}) })
}

// TestForQueryValidation pins constructor errors: no partition columns, and
// an invalid query, both fail up front.
func TestForQueryValidation(t *testing.T) {
	if _, err := ForQuery(vwapSpec(), nil, Options{}); err == nil {
		t.Fatal("ForQuery with no partition columns succeeded")
	}
	invalid := &query.Query{
		Agg: query.Col("price"),
		Preds: []query.Predicate{{
			Left:  query.ValSub(1, &query.Subquery{Kind: query.Min, Of: query.Col("price")}),
			Op:    query.Lt,
			Right: query.ValSub(1, &query.Subquery{Kind: query.Sum, Of: query.Col("volume")}),
		}},
	}
	if _, err := ForQuery(invalid, []string{"sym"}, Options{}); err == nil {
		t.Fatal("ForQuery with a non-streamable query succeeded")
	}
}
