package serve

import (
	"math"
	"math/rand"
	"testing"

	"rpai/internal/engine"
	"rpai/internal/query"
)

func fanVWAP(c float64) *query.Query {
	return &query.Query{
		Agg: query.Mul(query.Col("price"), query.Col("volume")),
		Preds: []query.Predicate{{
			Left: query.ValSub(c, &query.Subquery{Kind: query.Sum, Of: query.Col("volume")}),
			Op:   query.Lt,
			Right: query.ValSub(1, &query.Subquery{
				Kind:  query.Sum,
				Of:    query.Col("volume"),
				Where: &query.CorrPred{Inner: query.Col("price"), Op: query.Le, Outer: query.Col("price")},
			}),
		}},
	}
}

// TestServeFanDifferential runs one fan service against K dedicated
// services over the same event stream and checks FanResult,
// FanResultGrouped and fan subscriptions are bit-identical per lane.
func TestServeFanDifferential(t *testing.T) {
	consts := []float64{0.3, 0.75, 0.9}
	opt := Options{Shards: 3, BatchSize: 8}
	fam, err := ForQuery(fanVWAP(consts[1]), []string{"broker"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer fam.Close()
	if err := fam.SetFan(consts); err != nil {
		t.Fatalf("SetFan: %v", err)
	}
	solo := make([]*Service[engine.Event], len(consts))
	for i, c := range consts {
		s, err := ForQuery(fanVWAP(c), []string{"broker"}, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		solo[i] = s
	}

	// A fan subscription per lane, attached before ingest.
	subs := make([]*Subscription, len(consts))
	for i := range consts {
		c := consts[i]
		sub, err := fam.Subscribe(SubOptions{FanConst: &c, Buffer: 1024})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs[i] = sub
	}

	rng := rand.New(rand.NewSource(3))
	var live []query.Tuple
	for batch := 0; batch < 30; batch++ {
		n := rng.Intn(12) + 1
		ev := make([]engine.Event, 0, n)
		for i := 0; i < n; i++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				j := rng.Intn(len(live))
				ev = append(ev, engine.Delete(live[j]))
				live = append(live[:j], live[j+1:]...)
			} else {
				tu := query.Tuple{
					"price":  float64(rng.Intn(40)) + 1,
					"volume": float64(rng.Intn(9)) + 1,
					"broker": float64(rng.Intn(5)),
				}
				live = append(live, tu)
				ev = append(ev, engine.Insert(tu))
			}
		}
		if err := fam.ApplyBatch(ev); err != nil {
			t.Fatal(err)
		}
		for _, s := range solo {
			if err := s.ApplyBatch(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := fam.Drain(); err != nil {
			t.Fatal(err)
		}
		for _, s := range solo {
			if err := s.Drain(); err != nil {
				t.Fatal(err)
			}
		}
		for i, c := range consts {
			got, ok := fam.FanResult(c)
			if !ok {
				t.Fatalf("batch %d: lane %v not installed", batch, c)
			}
			want := solo[i].Result()
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("batch %d lane %v: FanResult %v, solo %v", batch, c, got, want)
			}
			gg, ok := fam.FanResultGrouped(c)
			if !ok {
				t.Fatalf("batch %d: grouped lane %v not installed", batch, c)
			}
			wg := solo[i].ResultGrouped()
			if len(gg) != len(wg) {
				t.Fatalf("batch %d lane %v: %d groups, solo %d", batch, c, len(gg), len(wg))
			}
			for j := range gg {
				if math.Float64bits(gg[j].Value) != math.Float64bits(wg[j].Value) {
					t.Fatalf("batch %d lane %v group %v: %v, solo %v",
						batch, c, gg[j].Key, gg[j].Value, wg[j].Value)
				}
			}
		}
	}

	// Replay each lane subscription's frames; the final state must equal the
	// lane's grouped results.
	for i, c := range consts {
		subs[i].Close()
		state := map[string]float64{}
		for fr := range subs[i].Frames() {
			for _, g := range fr.Groups {
				state[string(encodeKey(nil, g.Key))] = g.Value
			}
		}
		want, _ := fam.FanResultGrouped(c)
		if len(state) != len(want) {
			t.Fatalf("lane %v: replay has %d groups, want %d", c, len(state), len(want))
		}
		for _, g := range want {
			v, ok := state[string(encodeKey(nil, g.Key))]
			if !ok || math.Float64bits(v) != math.Float64bits(g.Value) {
				t.Fatalf("lane %v group %v: replay %v want %v", c, g.Key, v, g.Value)
			}
		}
	}

	// SetFan with an unsupported lane set still leaves base reads intact;
	// removing lanes disables fan reads.
	if err := fam.SetFan(nil); err != nil {
		t.Fatalf("SetFan(nil): %v", err)
	}
	if err := fam.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fam.FanResult(consts[0]); ok {
		t.Fatalf("fan read succeeded after lanes removed")
	}
}
