package serve

import (
	"math/rand"
	"sync"
	"testing"

	"rpai/internal/engine"
	"rpai/internal/query"
)

// TestConcurrentProducersAndReaders hammers one service with P producer
// goroutines and R reader goroutines. Every value the producers insert is an
// integer, so per-partition aggregates are exact and order-independent: after
// a Drain the served total must equal the serial reference no matter how the
// scheduler interleaved the producers. Run under -race this is the shard-level
// data-race test the serving layer is required to pass.
func TestConcurrentProducersAndReaders(t *testing.T) {
	const (
		producers  = 4
		readers    = 3
		perTrace   = 2500
		partitions = 17
	)
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 4, BatchSize: 16, QueueLen: 128})
	if err != nil {
		t.Fatal(err)
	}

	// Each producer owns its own trace; deletes retract only tuples that same
	// producer inserted, so the union of all traces is a well-formed
	// insert/retract multiset regardless of interleaving.
	traces := make([][]engine.Event, producers)
	for p := range traces {
		traces[p] = producerTrace(int64(100+p), perTrace, partitions)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = svc.Result()
				_ = svc.ResultGrouped()
				_ = svc.Stats()
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(events []engine.Event) {
			defer pwg.Done()
			for _, e := range events {
				if err := svc.Apply(e); err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
			}
		}(traces[p])
	}
	pwg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	var all []engine.Event
	for _, tr := range traces {
		all = append(all, tr...)
	}
	want := serialReference(t, q, all)
	var wantTotal float64
	for _, v := range want {
		wantTotal += v
	}
	if got := svc.Result(); got != wantTotal {
		t.Fatalf("concurrent total = %v, want %v", got, wantTotal)
	}
	for _, g := range svc.ResultGrouped() {
		if want[g.Key[0]] != g.Value {
			t.Fatalf("partition %v = %v, want %v", g.Key[0], g.Value, want[g.Key[0]])
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// producerTrace is symEvents restricted to one producer's private live set.
func producerTrace(seed int64, n, partitions int) []engine.Event {
	rng := rand.New(rand.NewSource(seed))
	var live []query.Tuple
	out := make([]engine.Event, 0, n)
	for i := 0; i < n; i++ {
		if len(live) > 0 && rng.Float64() < 0.3 {
			j := rng.Intn(len(live))
			out = append(out, engine.Delete(live[j]))
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		t := query.Tuple{
			"sym":    float64(rng.Intn(partitions)),
			"price":  float64(rng.Intn(30) + 1),
			"volume": float64(rng.Intn(20) + 1),
		}
		live = append(live, t)
		out = append(out, engine.Insert(t))
	}
	return out
}

// TestCloseRacesWithProducers closes the service while producers are still
// applying: every Apply must either succeed or return ErrClosed, never panic
// (send on closed channel) or deadlock, and Close must still drain cleanly.
func TestCloseRacesWithProducers(t *testing.T) {
	for round := 0; round < 20; round++ {
		q := vwapSpec()
		svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 3, BatchSize: 8, QueueLen: 32})
		if err != nil {
			t.Fatal(err)
		}
		events := producerTrace(int64(round), 600, 7)
		var wg sync.WaitGroup
		for p := 0; p < 3; p++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				for _, e := range events[off:] {
					if err := svc.Apply(e); err != nil {
						if err != ErrClosed {
							t.Errorf("Apply: %v", err)
						}
						return
					}
				}
			}(p * 200)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		_ = svc.Result() // final snapshots must remain readable
	}
}

// TestDrainRacesWithProducers interleaves Drain barriers with concurrent
// producers: each Drain must return without deadlock while traffic continues.
func TestDrainRacesWithProducers(t *testing.T) {
	q := vwapSpec()
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, BatchSize: 8, QueueLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	events := producerTrace(9, 3000, 11)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, e := range events {
			if err := svc.Apply(e); err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := svc.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	want := serialReference(t, q, events)
	var wantTotal float64
	for _, v := range want {
		wantTotal += v
	}
	if got := svc.Result(); got != wantTotal {
		t.Fatalf("total = %v, want %v", got, wantTotal)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
