package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rpai/internal/engine"
	"rpai/internal/query"
)

// This file is the serving side of shared-state reads (probe lanes): one
// service maintains its executors once, and every snapshot additionally
// materializes the per-partition results of K probe plans via the executors'
// ResultProbe. Lanes generalize PR 9's threshold fans three ways: a lane may
// probe a different threshold constant, a different outer aggregate (SUM,
// COUNT, AVG — the relation state maintains both index sides), or carry a
// residual partition-column conjunct applied as a per-partition gate. Each
// lane's values are bit-identical to a dedicated single-variant service fed
// the same events — the engine's ProbeExecutor contract plus gate-zeroing —
// so a catalog can serve N structural variants from one executor set.

// FanExecutor mirrors engine.FanExecutor through the serving layer: consts
// is sorted ascending, dst has the same length, and dst[i] must equal (bit
// for bit) the Result of a dedicated executor built with constant consts[i].
type FanExecutor interface {
	ResultFan(consts, dst []float64)
}

// ProbeExecutor mirrors engine.ProbeExecutor through the serving layer; see
// that contract for the vals/cnts convention (AVG lanes are raw pairs).
type ProbeExecutor interface {
	ResultProbe(specs []engine.ProbeSpec, vals, cnts []float64)
}

// canonSpecs sorts and deduplicates lane specs. Lanes are addressed by spec
// value (ProbeSpec is comparable), so callers never track positions; the
// order is deterministic — by constant bits, then kind, then residual — so
// every shard and every recovery installs identical lane layouts.
func canonSpecs(specs []engine.ProbeSpec) []engine.ProbeSpec {
	out := append([]engine.ProbeSpec(nil), specs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Const != b.Const {
			return a.Const < b.Const
		}
		if ab, bb := math.Float64bits(a.Const), math.Float64bits(b.Const); ab != bb {
			return ab < bb // orders -0 before +0 deterministically
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Residual != b.Residual {
			return !a.Residual
		}
		if a.ResidualCol != b.ResidualCol {
			return a.ResidualCol < b.ResidualCol
		}
		if a.ResidualOp != b.ResidualOp {
			return a.ResidualOp < b.ResidualOp
		}
		return math.Float64bits(a.ResidualVal) < math.Float64bits(b.ResidualVal)
	})
	w := 0
	for i, sp := range out {
		if i == 0 || sp != out[i-1] {
			out[w] = sp
			w++
		}
	}
	return out[:w]
}

// SetProbes installs the service's probe lanes, replacing any previous set:
// every partition's per-lane results are re-evaluated on its owning shard's
// worker, and the next publication is a full one (lane values are not a
// delta on the previous lane set). An empty specs disables lane reads. The
// specs are deduplicated and canonically ordered; lanes are addressed by
// spec value, not index. Fails when any partition's executor does not
// implement ProbeExecutor, or when a residual spec names a column outside
// Config.PartitionCols — partitions created after a successful SetProbes
// are guaranteed lane-capable because every partition runs the same
// Config.New. Shard installation errors are joined (errors.Join), not
// truncated to the first shard's report; a failed shard keeps its previous
// lanes. SetProbes returns after every shard has installed the lanes; the
// publication carrying them follows the shard's next commit (Drain for a
// barrier).
func (s *Service[E]) SetProbes(specs []engine.ProbeSpec) error {
	canon := canonSpecs(specs)
	hasAvg := false
	for _, sp := range canon {
		if sp.Kind == query.Avg {
			hasAvg = true
		}
		if sp.Residual && !colNamed(s.cfg.PartitionCols, sp.ResidualCol) {
			return fmt.Errorf("serve: residual probe column %q is not a partition column (Config.PartitionCols: %v)",
				sp.ResidualCol, s.cfg.PartitionCols)
		}
	}
	var errs []error
	for i := range s.shards {
		if err := s.control(i, func(ws *workerState[E]) error {
			if len(canon) == 0 {
				ws.specs, ws.hasAvg = nil, false
				for _, p := range ws.plist {
					p.fan, p.fanCnt, p.gate = nil, nil, nil
				}
				ws.publishFull = true
				return nil
			}
			for _, p := range ws.plist {
				if p.probeEx == nil {
					return fmt.Errorf("serve: executor %T does not support probe reads", p.ex)
				}
			}
			ws.specs, ws.hasAvg = canon, hasAvg
			for _, p := range ws.plist {
				ws.sizeLanes(p)
				p.refreshLanes(ws)
			}
			ws.publishFull = true
			return nil
		}); err != nil {
			errs = append(errs, fmt.Errorf("serve: set probes shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

func colNamed(cols []string, name string) bool {
	for _, c := range cols {
		if c == name {
			return true
		}
	}
	return false
}

// SetFan installs plain SUM threshold lanes, one per constant — the PR 9
// fan surface, kept as a thin wrapper over SetProbes.
func (s *Service[E]) SetFan(consts []float64) error {
	specs := make([]engine.ProbeSpec, len(consts))
	for i, c := range consts {
		specs[i] = engine.ProbeSpec{Const: c}
	}
	return s.SetProbes(specs)
}

// laneOfSpec locates the lane serving spec in the canonical lane set; -1
// when absent. Constants match by exact bits (ProbeSpec equality).
func laneOfSpec(specs []engine.ProbeSpec, spec engine.ProbeSpec) int {
	for i, sp := range specs {
		if sp == spec {
			return i
		}
	}
	return -1
}

// Probes returns the installed lane specs (canonical order) as of the
// shards' published snapshots; nil when lane reads are off. Shards install
// lanes one at a time, so during a SetProbes the reported set is the first
// shard's.
func (s *Service[E]) Probes() []engine.ProbeSpec {
	if len(s.shards) == 0 {
		return nil
	}
	return s.shards[0].snap.Load().Probes
}

// ProbeResult returns the service-wide value of the lane serving spec, as of
// each shard's last published snapshot — the lane counterpart of Result. For
// AVG lanes the raw sum and count sides are summed across all shards first
// and finished as one quotient, the exact global average. ok is false when
// some shard's snapshot does not carry the lane (SetProbes with spec has not
// published everywhere yet, or spec was never installed).
func (s *Service[E]) ProbeResult(spec engine.ProbeSpec) (float64, bool) {
	var sum, cnt float64
	for _, sh := range s.shards {
		snap := sh.snap.Load()
		lane := laneOfSpec(snap.Probes, spec)
		if lane < 0 {
			return 0, false
		}
		sum += snap.FanTotals[lane]
		if snap.FanCntTotals != nil {
			cnt += snap.FanCntTotals[lane]
		}
	}
	return engine.FinishProbe(spec, sum, cnt), true
}

// ProbeResultGrouped returns the per-partition values of the lane serving
// spec, sorted by partition key — the lane counterpart of ResultGrouped.
// AVG lanes finish per partition (each group is its partition's exact
// average).
func (s *Service[E]) ProbeResultGrouped(spec engine.ProbeSpec) ([]engine.GroupResult, bool) {
	var out []engine.GroupResult
	for _, sh := range s.shards {
		snap := sh.snap.Load()
		lane := laneOfSpec(snap.Probes, spec)
		if lane < 0 {
			return nil, false
		}
		k := len(snap.Probes)
		for slot := range snap.Groups {
			v := snap.FanVals[slot*k+lane]
			var c float64
			if snap.FanCnts != nil {
				c = snap.FanCnts[slot*k+lane]
			}
			out = append(out, engine.GroupResult{Key: snap.Groups[slot].Key, Value: engine.FinishProbe(spec, v, c)})
		}
	}
	sortGroups(out)
	return out, true
}

// FanResult returns the sum of all partition results at the plain SUM lane
// with constant c — the PR 9 fan read, a wrapper over ProbeResult.
func (s *Service[E]) FanResult(c float64) (float64, bool) {
	return s.ProbeResult(engine.ProbeSpec{Const: c})
}

// FanResultGrouped returns the per-partition results at the plain SUM lane
// with constant c, sorted by partition key.
func (s *Service[E]) FanResultGrouped(c float64) ([]engine.GroupResult, bool) {
	return s.ProbeResultGrouped(engine.ProbeSpec{Const: c})
}
