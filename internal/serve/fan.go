package serve

import (
	"fmt"
	"math"
	"sort"

	"rpai/internal/engine"
)

// This file is the serving side of predicate-generalized sharing (threshold
// families): one service maintains its executors once, and every snapshot
// additionally materializes the per-partition results at K extra threshold
// constants ("fan lanes") via the executors' ResultFan. Each lane's values
// are bit-identical to a dedicated single-constant service fed the same
// events — the engine's FanExecutor contract — so a catalog can serve N
// constant-variant queries from one executor set.

// FanExecutor mirrors engine.FanExecutor through the serving layer: consts
// is sorted ascending, dst has the same length, and dst[i] must equal (bit
// for bit) the Result of a dedicated executor built with constant consts[i].
type FanExecutor interface {
	ResultFan(consts, dst []float64)
}

// SetFan installs the service's fan lane constants, replacing any previous
// set: every partition's per-lane results are re-evaluated on its owning
// shard's worker, and the next publication is a full one (fan values are not
// a delta on the previous lane set). An empty consts disables fan reads.
// The constants are deduplicated and kept sorted; lanes are addressed by
// constant value, not index, so callers never track positions. Fails when
// any partition's executor does not implement FanExecutor (the service's
// query is not family-eligible) — partitions created after a successful
// SetFan are guaranteed fan-capable because every partition runs the same
// Config.New. SetFan returns after every shard has installed the lanes; the
// publication carrying them follows the shard's next commit (Drain for a
// barrier).
func (s *Service[E]) SetFan(consts []float64) error {
	thrs := append([]float64(nil), consts...)
	sort.Float64s(thrs)
	// Dedup by bit pattern (lanes are resolved by exact bits; two queries
	// sharing a constant share a lane).
	w := 0
	for i, c := range thrs {
		if i == 0 || math.Float64bits(c) != math.Float64bits(thrs[i-1]) {
			thrs[w] = c
			w++
		}
	}
	thrs = thrs[:w]
	for i := range s.shards {
		if err := s.control(i, func(ws *workerState[E]) error {
			if len(thrs) == 0 {
				ws.fanThrs = nil
				for _, p := range ws.plist {
					p.fan = nil
				}
				ws.publishFull = true
				return nil
			}
			for _, p := range ws.plist {
				if p.fanEx == nil {
					return fmt.Errorf("serve: executor %T does not support fan reads", p.ex)
				}
			}
			ws.fanThrs = thrs
			for _, p := range ws.plist {
				if cap(p.fan) < len(thrs) {
					p.fan = make([]float64, len(thrs))
				} else {
					p.fan = p.fan[:len(thrs)]
				}
				p.fanEx.ResultFan(ws.fanThrs, p.fan)
			}
			ws.publishFull = true
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// laneOf locates the lane serving constant c in the sorted lane set, by
// exact bit equality; -1 when absent.
func laneOf(thrs []float64, c float64) int {
	for i, t := range thrs {
		if math.Float64bits(t) == math.Float64bits(c) {
			return i
		}
	}
	return -1
}

// FanResult returns the sum of all partition results at lane constant c, as
// of each shard's last published snapshot — the fan counterpart of Result.
// ok is false when some shard's snapshot does not carry the lane (SetFan
// with c has not published everywhere yet, or c was never installed).
func (s *Service[E]) FanResult(c float64) (float64, bool) {
	var total float64
	for _, sh := range s.shards {
		snap := sh.snap.Load()
		lane := laneOf(snap.FanThrs, c)
		if lane < 0 {
			return 0, false
		}
		total += snap.FanTotals[lane]
	}
	return total, true
}

// FanResultGrouped returns the per-partition results at lane constant c,
// sorted by partition key — the fan counterpart of ResultGrouped.
func (s *Service[E]) FanResultGrouped(c float64) ([]engine.GroupResult, bool) {
	var out []engine.GroupResult
	for _, sh := range s.shards {
		snap := sh.snap.Load()
		lane := laneOf(snap.FanThrs, c)
		if lane < 0 {
			return nil, false
		}
		k := len(snap.FanThrs)
		for slot := range snap.Groups {
			out = append(out, engine.GroupResult{Key: snap.Groups[slot].Key, Value: snap.FanVals[slot*k+lane]})
		}
	}
	sortGroups(out)
	return out, true
}

// FanThrs returns the installed lane constants (sorted ascending) as of the
// shards' published snapshots; nil when fan reads are off. Shards install
// lanes one at a time, so during a SetFan the reported set is the first
// shard's.
func (s *Service[E]) FanThrs() []float64 {
	if len(s.shards) == 0 {
		return nil
	}
	return s.shards[0].snap.Load().FanThrs
}
