package serve

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rpai/internal/checkpoint"
	"rpai/internal/engine"
)

// encodeGroups canonicalizes grouped results for bit-identical state
// comparison: key and value IEEE-754 bits in ResultGrouped's sorted order.
func encodeGroups(gs []engine.GroupResult) string {
	var b []byte
	for _, g := range gs {
		for _, k := range g.Key {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(k))
		}
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(g.Value))
	}
	return string(b)
}

// waitReplicaState polls until the replica's grouped results match want
// bit-identically, or the deadline passes.
func waitReplicaState(t *testing.T, r *Replica[engine.Event], want []engine.GroupResult, what string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if groupsIdentical(r.Service().ResultGrouped(), want) {
			return
		}
		if time.Now().After(deadline) {
			if err := r.Err(); err != nil {
				t.Fatalf("%s: replica tailer failed: %v", what, err)
			}
			t.Fatalf("%s: replica never converged:\n got %v\nwant %v", what, r.Service().ResultGrouped(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaCatchUp is the replica half of the differential proof on the
// happy path: a replica booted mid-stream converges bit-identically with the
// primary, follows it through further ingest, survives a checkpoint rotation
// (generation change), and keeps a subscription consistent across the rebase.
func TestReplicaCatchUp(t *testing.T) {
	q := vwapSpec()
	dir := t.TempDir()
	primary, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, BatchSize: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	events := symEvents(31, 3000, 13)
	feed := func(from, to int) {
		t.Helper()
		for i := from; i < to; i += 50 {
			end := i + 50
			if end > to {
				end = to
			}
			if err := primary.ApplyBatch(events[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := primary.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	feed(0, 1000)

	// Boot mid-stream; the replica may use a different shard count.
	replica, err := ReplicaForQuery(dir, q, []string{"sym"}, Options{Shards: 3}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	waitReplicaState(t, replica, primary.ResultGrouped(), "boot")

	// A subscriber on the replica must stay consistent through everything.
	sub, err := replica.Service().Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	view := NewView()

	feed(1000, 2000)
	waitReplicaState(t, replica, primary.ResultGrouped(), "follow")

	// Rotation: a checkpoint starts a new generation and removes the old
	// WALs; the replica must rebase and keep following.
	if err := primary.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	feed(2000, len(events))
	waitReplicaState(t, replica, primary.ResultGrouped(), "post-rotation")
	if replica.Rebases() < 2 {
		t.Fatalf("replica performed %d rebases, expected boot + rotation", replica.Rebases())
	}

	// The subscription's view must reconstruct the replica's final state —
	// the rebase's Full frames bridge the generation swap.
	if err := replica.Service().Drain(); err != nil {
		t.Fatal(err)
	}
	syncView(t, view, sub, replica.Service().ShardVersions())
	if got, want := view.Grouped(), primary.ResultGrouped(); !groupsIdentical(got, want) {
		t.Fatalf("replica subscriber view diverged from primary:\n got %v\nwant %v", got, want)
	}

	// A replica sheds no writes itself — the wire layer does — but its
	// service must still be fully readable.
	if replica.Service().Result() != primary.Result() {
		t.Fatal("replica total diverged")
	}
}

// walRecordEnds parses a WAL byte image and returns the file offsets at
// which each event record ends (offset 0 is the end of the header).
func walRecordEnds(t *testing.T, w []byte) []int64 {
	t.Helper()
	off := int64(4) // "RPWL"
	off += 8 + int64(binary.LittleEndian.Uint32(w[off:]))
	ends := []int64{off}
	for off < int64(len(w)) {
		if off+8 > int64(len(w)) {
			break
		}
		n := int64(binary.LittleEndian.Uint32(w[off:]))
		if off+8+n > int64(len(w)) {
			break
		}
		off += 8 + n
		ends = append(ends, off)
	}
	return ends
}

// TestReplicaChaos is the crash/lag chaos half of the differential proof: a
// replica fed a WAL that grows by random byte amounts (torn tails included),
// killed and restarted at random points, must never serve a state that is
// not a batch-boundary prefix of the primary's history, and must converge
// bit-identically once the log is complete — including across a checkpoint
// rotation staged mid-flight.
func TestReplicaChaos(t *testing.T) {
	q := vwapSpec()
	primDir, repDir := t.TempDir(), t.TempDir()
	primary, err := ForQuery(q, []string{"sym"}, Options{Shards: 1, BatchSize: 1 << 20, Dir: primDir})
	if err != nil {
		t.Fatal(err)
	}

	// Feed the primary batch by batch with a Drain after each, so every WAL
	// record is exactly one batch; record the grouped state at every batch
	// boundary — the complete set of states a correct replica may serve.
	events := symEvents(53, 2400, 7)
	const batchLen = 40
	prefixes := map[string]bool{encodeGroups(nil): true}
	var boundaries [][]engine.GroupResult
	for i := 0; i < len(events); i += batchLen {
		end := i + batchLen
		if end > len(events) {
			end = len(events)
		}
		if err := primary.ApplyBatch(events[i:end]); err != nil {
			t.Fatal(err)
		}
		if err := primary.Drain(); err != nil {
			t.Fatal(err)
		}
		g := primary.ResultGrouped()
		prefixes[encodeGroups(g)] = true
		boundaries = append(boundaries, g)
	}
	phase1Final := boundaries[len(boundaries)-1]

	// Capture the full phase-1 WAL, then stage a replica directory whose WAL
	// grows by random increments.
	walName := filepath.Base(checkpoint.WALPath(primDir, 1, 0))
	full, err := os.ReadFile(checkpoint.WALPath(primDir, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	ends := walRecordEnds(t, full)
	if len(ends) != len(boundaries)+1 {
		t.Fatalf("WAL holds %d records, fed %d batches", len(ends)-1, len(boundaries))
	}
	if err := checkpoint.WriteManifest(repDir, checkpoint.Manifest{Gen: 1, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	stagedWAL := filepath.Join(repDir, walName)
	writeStaged := func(n int) {
		t.Helper()
		if err := os.WriteFile(stagedWAL+".tmp", full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(stagedWAL+".tmp", stagedWAL); err != nil {
			t.Fatal(err)
		}
	}
	appendStaged := func(from, to int) {
		t.Helper()
		f, err := os.OpenFile(stagedWAL, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(full[from:to]); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	// recordsIn counts complete records within the first n staged bytes.
	recordsIn := func(n int) int {
		k := 0
		for k+1 < len(ends) && ends[k+1] <= int64(n) {
			k++
		}
		return k
	}

	rng := rand.New(rand.NewSource(97))
	cut := int(ends[0]) + 3 // past the header, mid-first-record
	writeStaged(cut)

	boot := func() *Replica[engine.Event] {
		t.Helper()
		r, err := ReplicaForQuery(repDir, q, []string{"sym"}, Options{Shards: 1}, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	replica := boot()
	checkState := func(what string) {
		t.Helper()
		if g := replica.Service().ResultGrouped(); !prefixes[encodeGroups(g)] {
			t.Fatalf("%s: replica serves a non-prefix state: %v", what, g)
		}
	}
	waitApplied := func(n int) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for replica.Applied() < uint64(n) {
			if time.Now().After(deadline) {
				t.Fatalf("replica applied %d of %d records", replica.Applied(), n)
			}
			checkState("while lagging")
			time.Sleep(100 * time.Microsecond)
		}
	}

	for cut < len(full) {
		// Grow the staged WAL by a random amount — often a torn tail.
		step := 1 + rng.Intn(512)
		next := cut + step
		if next > len(full) {
			next = len(full)
		}
		appendStaged(cut, next)
		cut = next
		waitApplied(recordsIn(cut))
		checkState("after growth")
		if rng.Intn(6) == 0 {
			// Kill the tailer and restart it: the fresh replica replays the
			// staged prefix from scratch and must land on the same states.
			if err := replica.Close(); err != nil {
				t.Fatal(err)
			}
			replica = boot()
			waitApplied(recordsIn(cut))
			checkState("after restart")
		}
	}
	if err := replica.Service().Drain(); err != nil {
		t.Fatal(err)
	}
	if got := replica.Service().ResultGrouped(); !groupsIdentical(got, phase1Final) {
		t.Fatalf("replica did not converge on the phase-1 state:\n got %v\nwant %v", got, phase1Final)
	}

	// Phase 2: rotate the primary (new generation) and keep feeding; stage
	// the new generation into the replica directory mid-flight. The running
	// replica must rebase and converge on the final state.
	if err := primary.Checkpoint(primDir); err != nil {
		t.Fatal(err)
	}
	more := symEvents(59, 800, 7)
	for i := 0; i < len(more); i += batchLen {
		end := i + batchLen
		if end > len(more) {
			end = len(more)
		}
		if err := primary.ApplyBatch(more[i:end]); err != nil {
			t.Fatal(err)
		}
		if err := primary.Drain(); err != nil {
			t.Fatal(err)
		}
		prefixes[encodeGroups(primary.ResultGrouped())] = true
	}
	for _, name := range []string{
		filepath.Base(checkpoint.SnapPath(primDir, 2, 0)),
		filepath.Base(checkpoint.WALPath(primDir, 2, 0)),
	} {
		b, err := os.ReadFile(filepath.Join(primDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(repDir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := checkpoint.WriteManifest(repDir, checkpoint.Manifest{Gen: 2, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	want := primary.ResultGrouped()
	waitReplicaState(t, replica, want, "post-rotation")
	checkState("final")
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaRefusesNonCheckpoint checks the boot-time error paths.
func TestReplicaRefusesNonCheckpoint(t *testing.T) {
	q := vwapSpec()
	if _, err := ReplicaForQuery(t.TempDir(), q, []string{"sym"}, Options{}, 0); err == nil {
		t.Fatal("replica booted from an empty directory")
	} else if !errors.Is(err, os.ErrNotExist) && err == nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
