package serve

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"

	"rpai/internal/engine"
)

// This file is the subscription side of the serving layer: instead of polling
// ResultGrouped, a reader registers a Subscription and is pushed one
// DeltaFrame per shard publication it has not yet seen. Frames coalesce under
// backpressure — a slow subscriber skips intermediate versions but always
// receives the newest one — and a frame stream replayed over the attach-time
// base reconstructs the primary's grouped results bit-identically at every
// delivered version (the property FuzzSubscriptionDeltas checks).
//
// Delta model: the served state is upsert-only (partitions are created, never
// deleted), so a frame is a set of (key, value) upserts. A frame with Full
// set carries every live group of its shard and is therefore a valid
// transition from any base — that one property powers attach seeding, resume
// after a version mismatch, and replica rebase, with no delta history kept.

// ShardVersion names one shard's snapshot version, the unit subscription
// resume is expressed in.
type ShardVersion struct {
	Shard   int
	Version uint64
}

// DeltaFrame is one shard's published change set: applying Groups as upserts
// to a reader's state at version Base yields the shard's grouped results at
// version Version. When Full is set the frame instead replaces the reader's
// entire state for the shard (Base is 0) — the rebase frame sent at attach,
// on resume mismatch, and after a replica generation swap.
type DeltaFrame struct {
	Shard   int
	Version uint64
	Base    uint64
	Full    bool
	Groups  []engine.GroupResult // sorted by key, immutable
}

// SubOptions parameterizes Subscribe.
type SubOptions struct {
	// Keys, when non-empty, restricts the subscription to those partition
	// keys; frames carry only matching groups. Empty subscribes to all.
	Keys [][]float64
	// Buffer is the delivery channel's capacity (default 16). A full channel
	// never drops the newest version: publications coalesce into one pending
	// frame per shard until the subscriber catches up.
	Buffer int
	// Resume and ResumeEpoch ask to continue an earlier subscription: when
	// ResumeEpoch matches the service's epoch and a shard's resumed version
	// is no older than the shard's last state-changing publication, the
	// reader is provably current and no seed frame is sent for that shard;
	// any mismatch falls back to a Full reseed. Zero values mean a fresh
	// attach.
	Resume      []ShardVersion
	ResumeEpoch uint64
	// FanConst, when non-nil, subscribes to the plain SUM lane serving that
	// threshold constant instead of the base results — shorthand for Probe
	// with a zero-kind spec.
	FanConst *float64
	// Probe, when non-nil, subscribes to the probe lane serving that spec:
	// frames carry the lane's per-partition values (AVG lanes are finished
	// per partition, each group its partition's exact average; see
	// SetProbes). Publications made while the lane is not installed offer
	// nothing to this subscription.
	Probe *engine.ProbeSpec
}

// Subscription is one registered reader. Frames delivers coalesced
// DeltaFrames until Close (or the service closing) closes the channel.
type Subscription struct {
	frames chan DeltaFrame
	wake   chan struct{} // cap 1: publication token for the pump
	quit   chan struct{}
	once   sync.Once
	shards []*subShard
	detach func(*Subscription)
}

// subShard is one subscription's coalescing slot for one shard. The shard
// worker merges every publication into the slot under mu (later values win),
// and the subscription's pump drains it into at most one frame — so the
// memory per slot is bounded by the subscribed partition count no matter how
// far the subscriber lags.
type subShard struct {
	shard   int
	sub     *Subscription
	filter  map[string]bool  // encoded-key subset, nil = all partitions
	hasLane bool             // frames carry a probe lane's values, not the base results
	lane    engine.ProbeSpec // the lane spec (valid when hasLane)

	mu        sync.Mutex
	has       bool   // a pending frame exists
	full      bool   // pending frame replaces the whole shard state
	base      uint64 // version the pending frame applies on top of
	version   uint64 // version the pending frame brings the subscriber to
	delivered uint64 // version of the last frame handed to the pump
	groups    map[string]engine.GroupResult
}

// newEpoch draws a random nonzero service epoch.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 1
	}
	e := binary.LittleEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return e
}

// Subscribe registers a reader for this service's grouped results. Each shard
// seeds the subscription with a Full frame at its current version (unless a
// matching resume makes the seed redundant), after which every snapshot
// publication is pushed as a coalescing delta. The returned subscription must
// be Closed when done; the service's Close also finalizes it.
func (s *Service[E]) Subscribe(opt SubOptions) (*Subscription, error) {
	buf := opt.Buffer
	if buf <= 0 {
		buf = 16
	}
	var filter map[string]bool
	if len(opt.Keys) > 0 {
		filter = make(map[string]bool, len(opt.Keys))
		for _, k := range opt.Keys {
			vals := normalizeVals(append([]float64(nil), k...))
			filter[string(encodeKey(nil, vals))] = true
		}
	}
	resume := make(map[int]uint64, len(opt.Resume))
	if opt.ResumeEpoch != 0 && opt.ResumeEpoch == s.epoch {
		for _, sv := range opt.Resume {
			if sv.Shard >= 0 && sv.Shard < len(s.shards) {
				resume[sv.Shard] = sv.Version
			}
		}
	}
	sub := &Subscription{
		frames: make(chan DeltaFrame, buf),
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		shards: make([]*subShard, len(s.shards)),
		detach: s.detachSub,
	}
	for i := range s.shards {
		ss := &subShard{shard: i, sub: sub, filter: filter,
			groups: make(map[string]engine.GroupResult)}
		if opt.Probe != nil {
			ss.hasLane, ss.lane = true, *opt.Probe
		} else if opt.FanConst != nil {
			ss.hasLane, ss.lane = true, engine.ProbeSpec{Const: *opt.FanConst}
		}
		sub.shards[i] = ss
	}
	for i := range s.shards {
		ss := sub.shards[i]
		rv, hasResume := resume[i]
		if err := s.control(i, func(ws *workerState[E]) error {
			ws.subs = append(ws.subs, ss)
			if hasResume && rv <= ws.version && rv >= ws.lastChange {
				// Every commit past the resumed version was empty, so the
				// reader's state is provably current: no reseed, the next
				// publication's delta is based on rv.
				ss.delivered = rv
				return nil
			}
			s.offerFull(ws, ss, ws.version)
			return nil
		}); err != nil {
			// Mark closed so any slots already registered are dropped at the
			// shards' next publication.
			sub.Close()
			return nil, fmt.Errorf("serve: subscribe shard %d: %w", i, err)
		}
	}
	s.subMu.Lock()
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	sub.notify() // deliver the seed frames
	go sub.pump()
	return sub, nil
}

func (s *Service[E]) detachSub(sub *Subscription) {
	s.subMu.Lock()
	delete(s.subs, sub)
	s.subMu.Unlock()
}

// publishSubs runs on a shard worker right after it stored a new snapshot:
// it merges the publication into every live subscriber slot and drops slots
// whose subscription has closed. dirty is the batch's touched partitions
// (results already refreshed); when ws.publishFull is set the worker offers
// the full partition set instead, because the previous published state is not
// a valid delta base (replica rebase).
func (s *Service[E]) publishSubs(ws *workerState[E], dirty []*partition[E]) {
	live := ws.subs[:0]
	for _, ss := range ws.subs {
		if ss.sub.closedNow() {
			continue
		}
		live = append(live, ss)
		if ws.publishFull {
			s.offerFull(ws, ss, ws.version)
		} else {
			s.offerDeltas(ws, ss, ws.version, dirty)
		}
		ss.sub.notify()
	}
	for i := len(live); i < len(ws.subs); i++ {
		ws.subs[i] = nil
	}
	ws.subs = live
	ws.publishFull = false
}

// subLane resolves the value a partition contributes to this subscription:
// the base result, or the subscribed probe lane's value (AVG lanes finished
// per partition). ok is false when the slot wants a lane the worker has not
// installed (or the partition carries no lane values), in which case the
// partition is not offered.
func subLane[E any](ws *workerState[E], ss *subShard, p *partition[E]) (float64, bool) {
	if !ss.hasLane {
		return p.last, true
	}
	lane := laneOfSpec(ws.specs, ss.lane)
	if lane < 0 || lane >= len(p.fan) {
		return 0, false
	}
	var cnt float64
	if lane < len(p.fanCnt) {
		cnt = p.fanCnt[lane]
	}
	return engine.FinishProbe(ss.lane, p.fan[lane], cnt), true
}

// offerDeltas merges one incremental publication into a subscriber slot:
// the pending frame's base stays put, its version advances, and later upserts
// of the same key overwrite earlier ones — that overwrite is the coalescing
// that keeps a lagging subscriber's memory bounded while guaranteeing it
// still converges on the newest values.
func (s *Service[E]) offerDeltas(ws *workerState[E], ss *subShard, version uint64, dirty []*partition[E]) {
	ss.mu.Lock()
	if !ss.has {
		ss.has = true
		ss.full = false
		ss.base = ss.delivered
	}
	ss.version = version
	for _, p := range dirty {
		if ss.filter != nil && !ss.filter[p.ekey] {
			continue
		}
		v, ok := subLane(ws, ss, p)
		if !ok {
			continue
		}
		ss.groups[p.ekey] = engine.GroupResult{Key: p.vals, Value: v}
	}
	ss.mu.Unlock()
}

// offerFull replaces the slot's pending frame with the shard's complete
// state. Any pending incremental upserts are overwritten (their keys are a
// subset of the live partitions), so a full offer is absorbing.
func (s *Service[E]) offerFull(ws *workerState[E], ss *subShard, version uint64) {
	ss.mu.Lock()
	ss.has = true
	ss.full = true
	ss.base = 0
	ss.version = version
	for k, p := range ws.parts {
		if ss.filter != nil && !ss.filter[k] {
			continue
		}
		v, ok := subLane(ws, ss, p)
		if !ok {
			continue
		}
		ss.groups[k] = engine.GroupResult{Key: p.vals, Value: v}
	}
	ss.mu.Unlock()
}

// Frames is the subscription's delivery channel. It closes after Close (or
// the service closing); a reader that keeps up sees one frame per shard
// publication, a lagging reader sees coalesced frames whose Version always
// reaches the newest published one.
func (sub *Subscription) Frames() <-chan DeltaFrame { return sub.frames }

// Close detaches the subscription. Shard workers drop its slots at their next
// publication; the pump exits and closes Frames. Safe to call more than once
// and concurrently with delivery.
func (sub *Subscription) Close() {
	sub.once.Do(func() {
		close(sub.quit)
		if sub.detach != nil {
			sub.detach(sub)
		}
	})
}

func (sub *Subscription) closedNow() bool {
	select {
	case <-sub.quit:
		return true
	default:
		return false
	}
}

// notify hands the pump a wake token; a token already pending is enough.
func (sub *Subscription) notify() {
	select {
	case sub.wake <- struct{}{}:
	default:
	}
}

// pump turns pending slot state into delivered frames. It blocks on the
// delivery channel, not the shard workers: a slow subscriber stalls only its
// own pump while publications keep coalescing into the slots.
func (sub *Subscription) pump() {
	defer close(sub.frames)
	for {
		select {
		case <-sub.wake:
		case <-sub.quit:
			return
		}
		for _, ss := range sub.shards {
			fr, ok := ss.take()
			if !ok {
				continue
			}
			select {
			case sub.frames <- fr:
			case <-sub.quit:
				return
			}
		}
	}
}

// take extracts the slot's pending frame, if any, resetting the slot so the
// next publication starts a fresh delta based on what was just delivered.
func (ss *subShard) take() (DeltaFrame, bool) {
	ss.mu.Lock()
	if !ss.has {
		ss.mu.Unlock()
		return DeltaFrame{}, false
	}
	fr := DeltaFrame{Shard: ss.shard, Version: ss.version, Base: ss.base, Full: ss.full,
		Groups: make([]engine.GroupResult, 0, len(ss.groups))}
	for _, g := range ss.groups {
		fr.Groups = append(fr.Groups, g)
	}
	clear(ss.groups)
	ss.has, ss.full = false, false
	ss.delivered = ss.version
	ss.mu.Unlock()
	sortGroups(fr.Groups)
	return fr, true
}
