package serve

import (
	"math"
	"math/rand"
	"testing"

	"rpai/internal/engine"
	"rpai/internal/queries"
	"rpai/internal/query"
	"rpai/internal/stream"
)

// vwapSpec is Example 2.2 (the per-partition query of most serving tests):
// SUM(price*volume) WHERE 0.75*SUM(volume) < SUM(volume | price<=price).
func vwapSpec() *query.Query {
	return &query.Query{
		Agg: query.Mul(query.Col("price"), query.Col("volume")),
		Preds: []query.Predicate{{
			Left: query.ValSub(0.75, &query.Subquery{Kind: query.Sum, Of: query.Col("volume")}),
			Op:   query.Lt,
			Right: query.ValSub(1, &query.Subquery{
				Kind:  query.Sum,
				Of:    query.Col("volume"),
				Where: &query.CorrPred{Inner: query.Col("price"), Op: query.Le, Outer: query.Col("price")},
			}),
		}},
	}
}

// symEvents generates an insert/delete trace over partitions distinguished by
// the "sym" column.
func symEvents(seed int64, n, partitions int) []engine.Event {
	rng := rand.New(rand.NewSource(seed))
	var live []query.Tuple
	out := make([]engine.Event, 0, n)
	for i := 0; i < n; i++ {
		if len(live) > 0 && rng.Float64() < 0.25 {
			j := rng.Intn(len(live))
			out = append(out, engine.Delete(live[j]))
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		t := query.Tuple{
			"sym":    float64(rng.Intn(partitions)),
			"price":  float64(rng.Intn(30) + 1),
			"volume": float64(rng.Intn(20) + 1),
		}
		live = append(live, t)
		out = append(out, engine.Insert(t))
	}
	return out
}

// serialReference applies the trace through one engine executor per partition
// (the semantics the service promises) and returns the per-partition results.
func serialReference(t *testing.T, q *query.Query, events []engine.Event) map[float64]float64 {
	t.Helper()
	execs := map[float64]engine.Executor{}
	for _, e := range events {
		k := e.Tuple["sym"]
		ex, ok := execs[k]
		if !ok {
			var err error
			ex, err = engine.New(q)
			if err != nil {
				t.Fatal(err)
			}
			execs[k] = ex
		}
		ex.Apply(e)
	}
	out := make(map[float64]float64, len(execs))
	for k, ex := range execs {
		out[k] = ex.Result()
	}
	return out
}

// TestShardCountInvariance is the central differential test: the served
// output must not depend on the shard count, and must equal the serial
// one-executor-per-partition reference exactly.
func TestShardCountInvariance(t *testing.T) {
	q := vwapSpec()
	events := symEvents(7, 4000, 23)
	want := serialReference(t, q, events)
	var wantTotal float64
	for _, v := range want {
		wantTotal += v
	}
	for _, shards := range []int{1, 2, 3, 4, 8} {
		svc, err := ForQuery(q, []string{"sym"}, Options{Shards: shards, BatchSize: 32, QueueLen: 256})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if err := svc.Apply(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := svc.Drain(); err != nil {
			t.Fatal(err)
		}
		if got := svc.Result(); got != wantTotal {
			t.Fatalf("shards=%d: Result = %v, want %v", shards, got, wantTotal)
		}
		groups := svc.ResultGrouped()
		if len(groups) != len(want) {
			t.Fatalf("shards=%d: %d groups, want %d", shards, len(groups), len(want))
		}
		for i, g := range groups {
			if len(g.Key) != 1 {
				t.Fatalf("shards=%d: group %d has key %v", shards, i, g.Key)
			}
			if i > 0 && groups[i-1].Key[0] >= g.Key[0] {
				t.Fatalf("shards=%d: groups not sorted at %d", shards, i)
			}
			if wantV, ok := want[g.Key[0]]; !ok || wantV != g.Value {
				t.Fatalf("shards=%d: group %v = %v, want %v", shards, g.Key, g.Value, wantV)
			}
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotsLagAtMostUntilDrain checks the read contract: reads between
// batches may lag but Drain is a barrier after which reads are exact.
func TestSnapshotsLagAtMostUntilDrain(t *testing.T) {
	q := vwapSpec()
	events := symEvents(11, 1500, 9)
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	want := serialReference(t, q, events)
	var wantTotal float64
	for _, v := range want {
		wantTotal += v
	}
	for i, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			// Concurrent, possibly stale read: must not panic or block.
			if v := svc.Result(); math.IsNaN(v) {
				t.Fatal("NaN mid-stream result")
			}
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Result(); got != wantTotal {
		t.Fatalf("after Drain: Result = %v, want %v", got, wantTotal)
	}
}

// TestCloseSemantics: Close drains and publishes final state; later Apply,
// Drain and Close report ErrClosed; reads keep working.
func TestCloseSemantics(t *testing.T) {
	q := vwapSpec()
	events := symEvents(3, 800, 5)
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 4, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	want := serialReference(t, q, events)
	var wantTotal float64
	for _, v := range want {
		wantTotal += v
	}
	if got := svc.Result(); got != wantTotal {
		t.Fatalf("post-Close Result = %v, want %v (final snapshots must be published)", got, wantTotal)
	}
	if err := svc.Apply(events[0]); err != ErrClosed {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if err := svc.Drain(); err != ErrClosed {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
	if err := svc.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestStatsCounters checks the per-shard counters add up.
func TestStatsCounters(t *testing.T) {
	q := vwapSpec()
	const partitions = 13
	events := symEvents(5, 1000, partitions)
	svc, err := ForQuery(q, []string{"sym"}, Options{Shards: 4, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	var applied, flushed uint64
	var parts int
	for _, st := range svc.Stats() {
		applied += st.Applied
		flushed += st.Flushed
		parts += st.Partitions
		if st.QueueDepth != 0 {
			t.Fatalf("shard %d: queue depth %d after Drain", st.Shard, st.QueueDepth)
		}
	}
	if applied != uint64(len(events)) {
		t.Fatalf("applied = %d, want %d", applied, len(events))
	}
	if flushed == 0 {
		t.Fatal("no batches flushed")
	}
	if parts != partitions {
		t.Fatalf("partitions = %d, want %d", parts, partitions)
	}
	if svc.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", svc.Shards())
	}
}

// TestConfigValidation covers the constructor error paths and defaults.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config[int]{}); err == nil {
		t.Fatal("New without Partition/New succeeded")
	}
	if _, err := ForQuery(vwapSpec(), nil, Options{}); err == nil {
		t.Fatal("ForQuery without partition columns succeeded")
	}
	// MIN is representable but not streamable under deletions, so planning
	// must fail and ForQuery must surface the error.
	bad := &query.Query{
		Agg: query.Col("price"),
		Preds: []query.Predicate{{
			Left:  query.ValExpr(query.Col("price")),
			Op:    query.Ge,
			Right: query.ValSub(1, &query.Subquery{Kind: query.Min, Of: query.Col("price")}),
		}},
	}
	if _, err := ForQuery(bad, []string{"sym"}, Options{}); err == nil {
		t.Fatal("ForQuery with a non-streamable query succeeded")
	}
	// Zero options fall back to defaults and the service still works.
	svc, err := ForQuery(vwapSpec(), []string{"sym"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Shards() != 1 {
		t.Fatalf("default shards = %d, want 1", svc.Shards())
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFinanceExecutorServing serves the hand-written VWAP executor of package
// queries per broker over raw order-book events — the cross-layer deployment
// the serving layer exists for — and checks it against per-broker serial
// replay.
func TestFinanceExecutorServing(t *testing.T) {
	cfg := stream.DefaultOrderBook(5000)
	cfg.Seed = 42
	cfg.DeleteRatio = 0.2
	cfg.PriceLevels = 40
	cfg.MaxVolume = 50
	events := stream.GenerateOrderBook(cfg)

	svc, err := New(Config[stream.Event]{
		Shards:    3,
		BatchSize: 32,
		Partition: func(e stream.Event, buf []float64) []float64 {
			return append(buf, float64(e.Rec.BrokerID))
		},
		New: func([]float64) Executor[stream.Event] {
			return queries.NewBids("vwap", queries.RPAI)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ref := map[int32]queries.BidsExecutor{}
	for _, e := range events {
		if err := svc.Apply(e); err != nil {
			t.Fatal(err)
		}
		ex, ok := ref[e.Rec.BrokerID]
		if !ok {
			ex = queries.NewBids("vwap", queries.RPAI)
			ref[e.Rec.BrokerID] = ex
		}
		ex.Apply(e)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	var wantTotal float64
	for _, ex := range ref {
		wantTotal += ex.Result()
	}
	if got := svc.Result(); got != wantTotal {
		t.Fatalf("served VWAP-per-broker = %v, want %v", got, wantTotal)
	}
	groups := svc.ResultGrouped()
	if len(groups) != len(ref) {
		t.Fatalf("%d broker groups, want %d", len(groups), len(ref))
	}
	for _, g := range groups {
		if want := ref[int32(g.Key[0])].Result(); g.Value != want {
			t.Fatalf("broker %v = %v, want %v", g.Key[0], g.Value, want)
		}
	}
}
