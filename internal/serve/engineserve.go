package serve

import (
	"errors"

	"rpai/internal/engine"
	"rpai/internal/query"
)

// Options configures ForQuery; the zero value picks the Config defaults.
type Options struct {
	Shards    int
	QueueLen  int
	BatchSize int
}

// ForQuery builds a service that maintains q independently per partition,
// partitioning engine events by the given tuple columns. Each partition gets
// its own executor from engine.New (so eligible queries use the aggregate-
// index strategy per partition). The query is validated and planned once up
// front; per-partition construction cannot fail afterwards.
func ForQuery(q *query.Query, partitionBy []string, opt Options) (*Service[engine.Event], error) {
	if len(partitionBy) == 0 {
		return nil, errors.New("serve: ForQuery requires at least one partition column")
	}
	if _, err := engine.New(q); err != nil {
		return nil, err
	}
	cfg := Config[engine.Event]{
		Shards:    opt.Shards,
		QueueLen:  opt.QueueLen,
		BatchSize: opt.BatchSize,
		Partition: func(e engine.Event, buf []float64) []float64 {
			for _, c := range partitionBy {
				buf = append(buf, e.Tuple[c])
			}
			return buf
		},
		New: func([]float64) Executor[engine.Event] {
			ex, err := engine.New(q)
			if err != nil {
				// Unreachable: the same query planned successfully above.
				panic("serve: " + err.Error())
			}
			return ex
		},
	}
	return New(cfg)
}
