package serve

import (
	"errors"
	"fmt"
	"io"
	"time"

	"rpai/internal/engine"
	"rpai/internal/query"
)

// Options configures ForQuery; the zero value picks the Config defaults and
// keeps the service in-memory only.
type Options struct {
	Shards   int
	QueueLen int
	// BatchSize bounds how many queued events a shard drains into one batch
	// before refreshing results, publishing a snapshot and (when durable)
	// group-committing the batch to its WAL. 0 selects the default of 64;
	// negative values are rejected. The effective value is surfaced per shard
	// in ShardStats.BatchSize.
	BatchSize int
	// Dir, when set, makes the service durable: applied events are logged to
	// per-shard WALs under Dir, Checkpoint(Dir) rotates generations, and
	// RecoverForQuery resumes from it after a crash.
	Dir string
	// CompactEvery bounds replay work by rotating a shard's snapshot after
	// that many logged events (0 disables auto-compaction).
	CompactEvery int
}

// engineDurable wires the engine's executor snapshot codec and event codec
// into the serving layer's persistence hooks. It is always installed, so any
// engine-backed service can Checkpoint; Dir decides whether WALs are kept.
// exec is the query the partition executors actually run (the residual-split
// base when orig carries a residual conjunct); snapshots persist only the
// base state, and Restore re-derives each partition's gate from its key —
// the gate is configuration, not state.
func engineDurable(exec, orig *query.Query, gate func([]float64) bool, opt Options) *Durable[engine.Event] {
	// WAL replay is sequential (Recover walks shards one at a time), so one
	// interning decoder serves the whole recovery: each distinct column name
	// is allocated once for the entire replay instead of once per event.
	var dec engine.EventDecoder
	return &Durable[engine.Event]{
		Dir:          opt.Dir,
		CompactEvery: opt.CompactEvery,
		EncodeEvent:  engine.EncodeEvent,
		DecodeEvent:  dec.Decode,
		Snapshot: func(w io.Writer, _ []float64, ex Executor[engine.Event]) error {
			s, ok := ex.(engine.Snapshotter)
			if !ok {
				return fmt.Errorf("serve: executor %T does not support snapshots", ex)
			}
			return s.Snapshot(w)
		},
		Restore: func(r io.Reader, key []float64) (Executor[engine.Event], error) {
			ex, err := engine.Restore(exec, r)
			if err != nil {
				return nil, err
			}
			if exec != orig {
				return engine.NewGated(ex, gate(key)), nil
			}
			return ex, nil
		},
	}
}

func engineConfig(q *query.Query, partitionBy []string, opt Options) (Config[engine.Event], error) {
	var cfg Config[engine.Event]
	if len(partitionBy) == 0 {
		return cfg, errors.New("serve: ForQuery requires at least one partition column")
	}
	if q.Outer == query.Avg {
		// A partitioned service composes its scalar result by summing the
		// partitions, and an average is not sum-decomposable. AVG queries are
		// served as probe lanes (raw sum/count pairs finished at the read
		// boundary) — register them against a catalog instead.
		return cfg, errors.New("serve: top-level AVG is not sum-decomposable across partitions; register it against a catalog, which serves it as a probe lane")
	}
	// A query carrying one extra bare partition-column conjunct splits into
	// its shareable base plus a residual gate: every partition maintains the
	// base, and partitions the conjunct excludes are gated to 0 — the same
	// read the catalog serves for such a query as a residual probe lane, so
	// a dedicated service and a shared lane stay bit-identical.
	exec := q
	gate := func([]float64) bool { return true }
	if base, spec, ok := engine.SplitResidual(q, partitionBy); ok {
		exec = base
		gate = func(key []float64) bool { return spec.GateOn(partitionBy, key) }
	}
	if _, err := engine.New(exec); err != nil {
		return cfg, err
	}
	cfg = Config[engine.Event]{
		Shards:        opt.Shards,
		QueueLen:      opt.QueueLen,
		BatchSize:     opt.BatchSize,
		PartitionCols: partitionBy,
		Partition: func(e engine.Event, buf []float64) []float64 {
			for _, c := range partitionBy {
				buf = append(buf, e.Tuple[c])
			}
			return buf
		},
		New: func(key []float64) Executor[engine.Event] {
			ex, err := engine.New(exec)
			if err != nil {
				// Unreachable: the same query planned successfully above.
				panic("serve: " + err.Error())
			}
			if exec != q {
				return engine.NewGated(ex, gate(key))
			}
			return ex
		},
		Durable: engineDurable(exec, q, gate, opt),
	}
	return cfg, nil
}

// ForQuery builds a service that maintains q independently per partition,
// partitioning engine events by the given tuple columns. Each partition gets
// its own executor from engine.New (so eligible queries use the aggregate-
// index strategy per partition). The query is validated and planned once up
// front; per-partition construction cannot fail afterwards. The service can
// always Checkpoint; set Options.Dir to additionally keep WALs for crash
// recovery via RecoverForQuery.
func ForQuery(q *query.Query, partitionBy []string, opt Options) (*Service[engine.Event], error) {
	cfg, err := engineConfig(q, partitionBy, opt)
	if err != nil {
		return nil, err
	}
	return New(cfg)
}

// RecoverForQuery rebuilds a ForQuery service from the checkpoint directory
// dir. The query and partition columns must match the ones the checkpoint
// was written under (a mismatched query fails executor restoration); the
// shard count may differ — partitions are rehashed onto opt.Shards.
func RecoverForQuery(dir string, q *query.Query, partitionBy []string, opt Options) (*Service[engine.Event], error) {
	cfg, err := engineConfig(q, partitionBy, opt)
	if err != nil {
		return nil, err
	}
	return Recover(dir, cfg)
}

// ReplicaForQuery boots a read replica tailing the primary ForQuery service
// whose data directory is dir. The query and partition columns must match
// the primary's; opt.Dir is ignored (replicas keep no WALs of their own).
// poll is the WAL tail polling interval (0 selects ReplicaPollDefault).
func ReplicaForQuery(dir string, q *query.Query, partitionBy []string, opt Options, poll time.Duration) (*Replica[engine.Event], error) {
	cfg, err := engineConfig(q, partitionBy, opt)
	if err != nil {
		return nil, err
	}
	return NewReplica(dir, cfg, poll)
}
