package serve

import (
	"errors"
	"fmt"
	"io"
	"time"

	"rpai/internal/engine"
	"rpai/internal/query"
)

// Options configures ForQuery; the zero value picks the Config defaults and
// keeps the service in-memory only.
type Options struct {
	Shards   int
	QueueLen int
	// BatchSize bounds how many queued events a shard drains into one batch
	// before refreshing results, publishing a snapshot and (when durable)
	// group-committing the batch to its WAL. 0 selects the default of 64;
	// negative values are rejected. The effective value is surfaced per shard
	// in ShardStats.BatchSize.
	BatchSize int
	// Dir, when set, makes the service durable: applied events are logged to
	// per-shard WALs under Dir, Checkpoint(Dir) rotates generations, and
	// RecoverForQuery resumes from it after a crash.
	Dir string
	// CompactEvery bounds replay work by rotating a shard's snapshot after
	// that many logged events (0 disables auto-compaction).
	CompactEvery int
}

// engineDurable wires the engine's executor snapshot codec and event codec
// into the serving layer's persistence hooks. It is always installed, so any
// engine-backed service can Checkpoint; Dir decides whether WALs are kept.
func engineDurable(q *query.Query, opt Options) *Durable[engine.Event] {
	// WAL replay is sequential (Recover walks shards one at a time), so one
	// interning decoder serves the whole recovery: each distinct column name
	// is allocated once for the entire replay instead of once per event.
	var dec engine.EventDecoder
	return &Durable[engine.Event]{
		Dir:          opt.Dir,
		CompactEvery: opt.CompactEvery,
		EncodeEvent:  engine.EncodeEvent,
		DecodeEvent:  dec.Decode,
		Snapshot: func(w io.Writer, _ []float64, ex Executor[engine.Event]) error {
			s, ok := ex.(engine.Snapshotter)
			if !ok {
				return fmt.Errorf("serve: executor %T does not support snapshots", ex)
			}
			return s.Snapshot(w)
		},
		Restore: func(r io.Reader, _ []float64) (Executor[engine.Event], error) {
			return engine.Restore(q, r)
		},
	}
}

func engineConfig(q *query.Query, partitionBy []string, opt Options) (Config[engine.Event], error) {
	var cfg Config[engine.Event]
	if len(partitionBy) == 0 {
		return cfg, errors.New("serve: ForQuery requires at least one partition column")
	}
	if _, err := engine.New(q); err != nil {
		return cfg, err
	}
	cfg = Config[engine.Event]{
		Shards:    opt.Shards,
		QueueLen:  opt.QueueLen,
		BatchSize: opt.BatchSize,
		Partition: func(e engine.Event, buf []float64) []float64 {
			for _, c := range partitionBy {
				buf = append(buf, e.Tuple[c])
			}
			return buf
		},
		New: func([]float64) Executor[engine.Event] {
			ex, err := engine.New(q)
			if err != nil {
				// Unreachable: the same query planned successfully above.
				panic("serve: " + err.Error())
			}
			return ex
		},
		Durable: engineDurable(q, opt),
	}
	return cfg, nil
}

// ForQuery builds a service that maintains q independently per partition,
// partitioning engine events by the given tuple columns. Each partition gets
// its own executor from engine.New (so eligible queries use the aggregate-
// index strategy per partition). The query is validated and planned once up
// front; per-partition construction cannot fail afterwards. The service can
// always Checkpoint; set Options.Dir to additionally keep WALs for crash
// recovery via RecoverForQuery.
func ForQuery(q *query.Query, partitionBy []string, opt Options) (*Service[engine.Event], error) {
	cfg, err := engineConfig(q, partitionBy, opt)
	if err != nil {
		return nil, err
	}
	return New(cfg)
}

// RecoverForQuery rebuilds a ForQuery service from the checkpoint directory
// dir. The query and partition columns must match the ones the checkpoint
// was written under (a mismatched query fails executor restoration); the
// shard count may differ — partitions are rehashed onto opt.Shards.
func RecoverForQuery(dir string, q *query.Query, partitionBy []string, opt Options) (*Service[engine.Event], error) {
	cfg, err := engineConfig(q, partitionBy, opt)
	if err != nil {
		return nil, err
	}
	return Recover(dir, cfg)
}

// ReplicaForQuery boots a read replica tailing the primary ForQuery service
// whose data directory is dir. The query and partition columns must match
// the primary's; opt.Dir is ignored (replicas keep no WALs of their own).
// poll is the WAL tail polling interval (0 selects ReplicaPollDefault).
func ReplicaForQuery(dir string, q *query.Query, partitionBy []string, opt Options, poll time.Duration) (*Replica[engine.Event], error) {
	cfg, err := engineConfig(q, partitionBy, opt)
	if err != nil {
		return nil, err
	}
	return NewReplica(dir, cfg, poll)
}
