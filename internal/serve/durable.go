package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rpai/internal/checkpoint"
)

// This file is the durability coordinator for a Service: Checkpoint fans a
// snapshot request out to every shard worker, Recover rebuilds a service from
// a checkpoint directory, and compactShard is the per-shard rotation both of
// them (and the workers' own auto-compaction) share. All shard-state access
// happens on the owning worker goroutine via control requests, so none of
// this code takes locks on partition state.

// compactShard snapshots one shard's partitions to dir under generation gen
// and, when rotate is set, starts a fresh WAL at the next sequence number.
// It runs on the shard's worker goroutine (via a control request or the
// worker's own auto-compaction), so it owns ws exclusively.
//
// Rotation order matters for crash safety: the snapshot is renamed into
// place first, then the WAL is recreated. A crash between the two leaves a
// WAL whose Seq is below the snapshot's; recovery ignores it as stale, since
// every event it holds is already inside the snapshot.
func (s *Service[E]) compactShard(ws *workerState[E], dir string, gen uint64, rotate bool) error {
	if ws.err != nil {
		return ws.err
	}
	d := s.cfg.Durable
	keys := make([]string, 0, len(ws.parts))
	for k := range ws.parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]checkpoint.Partition, 0, len(keys))
	var buf bytes.Buffer
	for _, k := range keys {
		p := ws.parts[k]
		buf.Reset()
		if err := d.Snapshot(&buf, p.vals, p.ex); err != nil {
			return fmt.Errorf("serve: snapshotting partition %v: %w", p.vals, err)
		}
		parts = append(parts, checkpoint.Partition{Key: p.vals, State: append([]byte(nil), buf.Bytes()...)})
	}
	seq := ws.seq + 1
	h := checkpoint.Header{Gen: gen, Seq: seq, Shard: uint32(ws.idx), ShardCount: uint32(len(s.shards))}
	if err := checkpoint.WriteSnapshotFile(checkpoint.SnapPath(dir, gen, ws.idx), h, parts); err != nil {
		return err
	}
	if !rotate {
		return nil
	}
	if ws.wal != nil {
		if err := ws.wal.Close(); err != nil {
			return err
		}
		ws.wal = nil
	}
	w, err := checkpoint.CreateWAL(checkpoint.WALPath(dir, gen, ws.idx), h)
	if err != nil {
		return err
	}
	ws.wal, ws.gen, ws.seq, ws.pending = w, gen, seq, 0
	return nil
}

// Checkpoint writes a consistent snapshot of every shard to dir.
//
// When dir is the service's own Durable.Dir, this is a full rotation: a new
// generation is written, the per-shard WALs restart empty, the MANIFEST is
// swapped only after every shard is durable, and the previous generation's
// files are removed — so a crash at any point leaves either the old or the
// new generation recoverable, never a mix. When dir is any other directory
// the call exports a standalone generation-1 checkpoint (no WALs) that
// Recover can open later; the live WALs are untouched.
//
// Each shard snapshots between batches, so the checkpoint captures a
// point-in-time state per partition. Checkpoint returns ErrClosed after
// Close.
func (s *Service[E]) Checkpoint(dir string) error {
	d := s.cfg.Durable
	if d == nil || d.Snapshot == nil {
		return errors.New("serve: Checkpoint requires Config.Durable.Snapshot")
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	own := s.walEnabled() && filepath.Clean(dir) == filepath.Clean(d.Dir)
	gen, rotate := uint64(1), false
	if own {
		gen, rotate = s.gen+1, true
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dones := make([]chan error, len(s.shards))
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	for i, sh := range s.shards {
		done := make(chan error, 1)
		dones[i] = done
		sh.in <- item[E]{ctl: &ctl[E]{
			fn:   func(ws *workerState[E]) error { return s.compactShard(ws, dir, gen, rotate) },
			done: done,
		}}
	}
	s.mu.RUnlock()
	var first error
	for _, done := range dones {
		if err := <-done; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	if err := checkpoint.WriteManifest(dir, checkpoint.Manifest{Gen: gen, Shards: uint32(len(s.shards))}); err != nil {
		return err
	}
	if own {
		s.gen = gen
		removeStale(dir, gen, len(s.shards))
	}
	return nil
}

// control runs fn on shard i's worker goroutine and returns its error.
func (s *Service[E]) control(i int, fn func(ws *workerState[E]) error) error {
	done := make(chan error, 1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.shards[i].in <- item[E]{ctl: &ctl[E]{fn: fn, done: done}}
	s.mu.RUnlock()
	return <-done
}

// removeStale deletes checkpoint files that do not belong to the current
// generation, plus orphaned temp files from interrupted writes. Temp files
// of the current generation are left alone: a worker's auto-compaction may
// be renaming one concurrently.
func removeStale(dir string, gen uint64, shards int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if base, _, found := strings.Cut(name, ".tmp-"); found {
			g, sIdx, _, ok := checkpoint.ParseName(base)
			live := ok && g == gen && sIdx < shards
			if !live && (ok || strings.HasPrefix(base, checkpoint.ManifestName)) {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		g, sIdx, _, ok := checkpoint.ParseName(name)
		if ok && (g != gen || sIdx >= shards) {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// errStopWAL aborts walHeader's read after the header record.
var errStopWAL = errors.New("serve: stop after WAL header")

// walHeader reads just a WAL file's header, without replaying its events.
func walHeader(path string) (checkpoint.Header, error) {
	h, _, err := checkpoint.ReadWAL(path, func([]byte) error { return errStopWAL })
	if err != nil && !errors.Is(err, errStopWAL) {
		return checkpoint.Header{}, err
	}
	return h, nil
}

// recoveredShard is one shard of a checkpoint generation as loaded from
// disk: its restored partition executors plus the WAL to replay, if any.
// seq is the snapshot sequence the state corresponds to (0 when the shard is
// carried by a fresh WAL alone) — the alignment point WAL tailing resumes at.
type recoveredShard[E any] struct {
	parts   []*partition[E]
	walPath string
	seq     uint64
}

// scanGens lists the generations present in a checkpoint directory, highest
// first.
func scanGens(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := map[uint64]bool{}
	for _, ent := range ents {
		if g, _, _, ok := checkpoint.ParseName(ent.Name()); ok {
			seen[g] = true
		}
	}
	gens := make([]uint64, 0, len(seen))
	for g := range seen {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// loadGen loads one checkpoint generation, restoring every partition
// executor and validating the snapshot/WAL sequence pairing. It returns an
// error if the generation is incomplete or inconsistent, in which case the
// caller falls back to the previous generation.
func loadGen[E any](dir string, gen uint64, d *Durable[E]) ([]recoveredShard[E], error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	hasSnap, hasWAL := map[int]bool{}, map[int]bool{}
	for _, ent := range ents {
		g, sIdx, isWAL, ok := checkpoint.ParseName(ent.Name())
		if !ok || g != gen {
			continue
		}
		if isWAL {
			hasWAL[sIdx] = true
		} else {
			hasSnap[sIdx] = true
		}
	}
	if len(hasSnap)+len(hasWAL) == 0 {
		return nil, fmt.Errorf("generation %d: no files", gen)
	}
	type snapUnit struct {
		h     checkpoint.Header
		parts []checkpoint.Partition
	}
	var count uint32
	note := func(h checkpoint.Header, kind string, i int) error {
		if h.Gen != gen || int(h.Shard) != i {
			return fmt.Errorf("generation %d shard %d %s: header says gen %d shard %d", gen, i, kind, h.Gen, h.Shard)
		}
		if count == 0 {
			count = h.ShardCount
		} else if h.ShardCount != count {
			return fmt.Errorf("generation %d: inconsistent shard counts %d vs %d", gen, count, h.ShardCount)
		}
		return nil
	}
	snaps := map[int]snapUnit{}
	walSeq := map[int]uint64{}
	for i := range hasSnap {
		h, parts, err := checkpoint.ReadSnapshotFile(checkpoint.SnapPath(dir, gen, i))
		if err != nil {
			return nil, fmt.Errorf("generation %d shard %d snapshot: %w", gen, i, err)
		}
		if err := note(h, "snapshot", i); err != nil {
			return nil, err
		}
		snaps[i] = snapUnit{h: h, parts: parts}
	}
	for i := range hasWAL {
		h, err := walHeader(checkpoint.WALPath(dir, gen, i))
		if err != nil {
			// A WAL whose header is torn was cut down mid-creation, before
			// any event could be logged: with a valid snapshot the shard is
			// still whole, without one the generation is unrecoverable.
			if !hasSnap[i] {
				return nil, fmt.Errorf("generation %d shard %d WAL: %w", gen, i, err)
			}
			continue
		}
		if err := note(h, "WAL", i); err != nil {
			return nil, err
		}
		walSeq[i] = h.Seq
	}
	out := make([]recoveredShard[E], count)
	for i := 0; i < int(count); i++ {
		su, haveSnap := snaps[i]
		seq, haveWAL := walSeq[i]
		switch {
		case haveSnap && haveWAL:
			if seq > su.h.Seq {
				return nil, fmt.Errorf("generation %d shard %d: WAL seq %d ahead of snapshot seq %d", gen, i, seq, su.h.Seq)
			}
			out[i].seq = su.h.Seq
			if seq == su.h.Seq {
				out[i].walPath = checkpoint.WALPath(dir, gen, i)
			}
			// seq < snapshot seq: stale WAL from a crash mid-rotation; the
			// snapshot already contains everything it holds.
		case haveSnap:
			// Snapshot alone carries the shard.
			out[i].seq = su.h.Seq
		case haveWAL:
			if seq != 0 {
				return nil, fmt.Errorf("generation %d shard %d: WAL seq %d but no snapshot", gen, i, seq)
			}
			out[i].walPath = checkpoint.WALPath(dir, gen, i)
		default:
			return nil, fmt.Errorf("generation %d: shard %d of %d missing", gen, i, count)
		}
		for _, p := range su.parts {
			ex, err := d.Restore(bytes.NewReader(p.State), p.Key)
			if err != nil {
				return nil, fmt.Errorf("generation %d shard %d partition %v: %w", gen, i, p.Key, err)
			}
			key := append([]float64(nil), p.Key...)
			np := newPartition(key, ex)
			np.last = ex.Result()
			out[i].parts = append(out[i].parts, np)
		}
	}
	return out, nil
}

// Recover rebuilds a Service from the checkpoint directory dir: it loads the
// highest complete generation (falling back past a partially written one),
// restores every partition executor from its snapshot, replays the paired
// WALs, and returns the service ready for new events.
//
// cfg.Shards need not match the checkpointed shard count — partitions are
// rehashed onto the new shards, and per-partition event order is preserved
// because each partition's WAL suffix lived on exactly one old shard.
// cfg.Durable must provide Restore and DecodeEvent; when cfg.Durable.Dir is
// set (normally dir itself), recovery finishes with a Checkpoint into it, so
// the service resumes with compact state and fresh WALs.
func Recover[E any](dir string, cfg Config[E]) (*Service[E], error) {
	d := cfg.Durable
	if d == nil || d.Restore == nil || d.DecodeEvent == nil {
		return nil, errors.New("serve: Recover requires Config.Durable with Restore and DecodeEvent")
	}
	if _, err := checkpoint.ReadManifest(dir); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("serve: %s is not a checkpoint directory", dir)
		}
		return nil, err
	}
	gens, err := scanGens(dir)
	if err != nil {
		return nil, err
	}
	var (
		gen     uint64
		loaded  []recoveredShard[E]
		lastErr error
	)
	for _, g := range gens {
		l, err := loadGen(dir, g, d)
		if err != nil {
			lastErr = err
			continue
		}
		gen, loaded = g, l
		break
	}
	if loaded == nil {
		if lastErr != nil {
			return nil, fmt.Errorf("serve: no recoverable generation in %s: %w", dir, lastErr)
		}
		return nil, fmt.Errorf("serve: no checkpoint files in %s", dir)
	}
	svc, err := newService(cfg, true)
	if err != nil {
		return nil, err
	}
	svc.gen = gen
	fail := func(err error) (*Service[E], error) {
		svc.Close()
		return nil, err
	}
	// Rehash the restored partitions onto the (possibly different) shard
	// count and install each batch on its owning worker. Installs are
	// control requests on the same channels as events, so FIFO ordering
	// guarantees every install lands before any replayed event.
	installs := make([][]*partition[E], len(svc.shards))
	for _, rs := range loaded {
		for _, p := range rs.parts {
			// Normalize restored keys so checkpoints written before the -0/NaN
			// canonicalization still rehash onto the same shard as live events.
			p.vals = normalizeVals(p.vals)
			t := int(hashVals(p.vals) % uint64(len(svc.shards)))
			installs[t] = append(installs[t], p)
		}
	}
	for i, list := range installs {
		if len(list) == 0 {
			continue
		}
		list := list
		if err := svc.control(i, func(ws *workerState[E]) error {
			for _, p := range list {
				p.ekey = string(encodeKey(nil, p.vals))
				if _, dup := ws.parts[p.ekey]; dup {
					return fmt.Errorf("serve: duplicate partition %v in checkpoint", p.vals)
				}
				ws.addPartition(p)
			}
			svc.shards[ws.idx].partitions.Store(int64(len(ws.parts)))
			return nil
		}); err != nil {
			return fail(err)
		}
	}
	for i, rs := range loaded {
		if rs.walPath == "" {
			continue
		}
		if _, _, err := checkpoint.ReadWAL(rs.walPath, func(rec []byte) error {
			// Each WAL record is one group-committed batch: the batch's events
			// concatenated with u32 length prefixes. Replaying them through
			// Apply in frame order reproduces the original event order.
			return forEachWALEvent(rec, func(p []byte) error {
				ev, err := d.DecodeEvent(p)
				if err != nil {
					return err
				}
				return svc.Apply(ev)
			})
		}); err != nil {
			return fail(fmt.Errorf("serve: replaying shard %d WAL: %w", i, err))
		}
	}
	if err := svc.Drain(); err != nil {
		return fail(err)
	}
	if svc.walEnabled() {
		if d.Snapshot == nil {
			return fail(errors.New("serve: Recover with Durable.Dir requires Durable.Snapshot"))
		}
		if err := svc.Checkpoint(d.Dir); err != nil {
			return fail(err)
		}
	}
	return svc, nil
}

// forEachWALEvent walks one group-committed WAL record — a concatenation of
// u32-little-endian-length-prefixed event encodings — and calls fn on each
// event payload in order. A truncated frame is an error: the WAL writer's own
// record checksums make a torn record unreadable as a unit, so a bad frame
// inside a readable record indicates corruption, not a torn tail.
func forEachWALEvent(rec []byte, fn func(p []byte) error) error {
	for len(rec) > 0 {
		if len(rec) < 4 {
			return fmt.Errorf("serve: truncated WAL batch frame header (%d bytes left)", len(rec))
		}
		n := binary.LittleEndian.Uint32(rec)
		rec = rec[4:]
		if uint64(n) > uint64(len(rec)) {
			return fmt.Errorf("serve: WAL batch frame length %d exceeds record remainder %d", n, len(rec))
		}
		if err := fn(rec[:n]); err != nil {
			return err
		}
		rec = rec[n:]
	}
	return nil
}
