package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildTailWAL writes a WAL with n records of varying sizes and returns its
// full byte image plus the record payloads.
func buildTailWAL(t *testing.T, path string, h Header, n int) ([]byte, [][]byte) {
	t.Helper()
	w, err := CreateWAL(path, h)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < n; i++ {
		rec := bytes.Repeat([]byte{byte(i + 1)}, 1+i*7)
		recs = append(recs, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return full, recs
}

// TestWALTailTornMatrix cuts a WAL at every byte offset and checks the tail
// reader's contract at each cut: it returns exactly the complete-record
// prefix, reports ErrNoRecord at the torn tail (never a payload, never
// corruption), and — once the remaining bytes are appended — resumes from the
// same cursor and delivers every remaining record.
func TestWALTailTornMatrix(t *testing.T) {
	dir := t.TempDir()
	h := Header{Gen: 3, Seq: 1, Shard: 0, ShardCount: 1}
	full, recs := buildTailWAL(t, filepath.Join(dir, "full.wal"), h, 6)
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tail, err := OpenWALTail(path)
		if err != nil {
			if !errors.Is(err, ErrNoRecord) {
				t.Fatalf("cut %d: open: %v", cut, err)
			}
			// Header still torn: appending the rest must make it openable.
			appendBytes(t, path, full[cut:])
			if tail, err = OpenWALTail(path); err != nil {
				t.Fatalf("cut %d: reopen after completing header: %v", cut, err)
			}
			drainAll(t, tail, recs, 0, cut)
			tail.Close()
			continue
		}
		if got := tail.Header(); got != h {
			t.Fatalf("cut %d: header %+v, want %+v", cut, got, h)
		}
		got := 0
		for {
			p, err := tail.Next()
			if errors.Is(err, ErrNoRecord) {
				break
			}
			if err != nil {
				t.Fatalf("cut %d: record %d: %v", cut, got, err)
			}
			if !bytes.Equal(p, recs[got]) {
				t.Fatalf("cut %d: record %d mismatch", cut, got)
			}
			got++
		}
		// Exactly the records whose bytes are fully inside the prefix.
		if want := completeRecords(full, cut, len(recs)); got != want {
			t.Fatalf("cut %d: read %d records, want %d", cut, got, want)
		}
		appendBytes(t, path, full[cut:])
		drainAll(t, tail, recs, got, cut)
		tail.Close()
	}
}

// completeRecords counts how many records end at or before offset cut.
func completeRecords(full []byte, cut, n int) int {
	off := len(walMagic)
	// skip the header record
	off += 8 + int(le.Uint32(full[off:]))
	count := 0
	for i := 0; i < n; i++ {
		off += 8 + int(le.Uint32(full[off:]))
		if off <= cut {
			count++
		}
	}
	return count
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func drainAll(t *testing.T, tail *WALTail, recs [][]byte, from, cut int) {
	t.Helper()
	for i := from; i < len(recs); i++ {
		p, err := tail.Next()
		if err != nil {
			t.Fatalf("cut %d: record %d after append: %v", cut, i, err)
		}
		if !bytes.Equal(p, recs[i]) {
			t.Fatalf("cut %d: record %d mismatch after append", cut, i)
		}
	}
	if _, err := tail.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("cut %d: want ErrNoRecord at end, got %v", cut, err)
	}
}

// TestWALTailLiveAppend interleaves writer appends with tail reads against
// the same file, the replica's steady-state shape.
func TestWALTailLiveAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.wal")
	h := Header{Gen: 1, Seq: 0, Shard: 2, ShardCount: 4}
	w, err := CreateWAL(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tail, err := OpenWALTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, err := tail.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("empty WAL: want ErrNoRecord, got %v", err)
	}
	for i := 0; i < 50; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 1+i%13)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		p, err := tail.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(p, rec) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := tail.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("drained WAL: want ErrNoRecord, got %v", err)
	}
}

// TestWALTailRotation recreates the WAL in place — what a snapshot rotation
// does — and checks the tail reports ErrTailRotated instead of corruption,
// both when the cursor is past the new file's size and when the new file has
// grown over it.
func TestWALTailRotation(t *testing.T) {
	for _, grow := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "rot.wal")
		buildTailWAL(t, path, Header{Gen: 1, Seq: 0, Shard: 0, ShardCount: 1}, 5)
		tail, err := OpenWALTail(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := tail.Next(); err != nil {
				t.Fatal(err)
			}
		}
		// Rotate: same path, next sequence (CreateWAL truncates in place).
		w, err := CreateWAL(path, Header{Gen: 1, Seq: 1, Shard: 0, ShardCount: 1})
		if err != nil {
			t.Fatal(err)
		}
		if grow {
			// Push the new WAL past the old cursor so the tail reads garbage
			// instead of hitting EOF — it must still detect the rotation.
			for i := 0; i < 20; i++ {
				if err := w.Append(bytes.Repeat([]byte{7}, 31)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tail.Next(); !errors.Is(err, ErrTailRotated) {
			t.Fatalf("grow=%v: want ErrTailRotated, got %v", grow, err)
		}
		tail.Close()
		w.Close()
		// Reopening picks up the new sequence.
		nt, err := OpenWALTail(path)
		if err != nil {
			t.Fatal(err)
		}
		if nt.Header().Seq != 1 {
			t.Fatalf("grow=%v: reopened header seq %d, want 1", grow, nt.Header().Seq)
		}
		nt.Close()
	}
}

// TestWALTailCorrupt flips a byte inside a committed record: the tail must
// report corruption, not ErrNoRecord and not a rotation.
func TestWALTailCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	full, _ := buildTailWAL(t, path, Header{Gen: 1, Seq: 0, Shard: 0, ShardCount: 1}, 3)
	full[len(full)-1] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	tail, err := OpenWALTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for i := 0; i < 2; i++ {
		if _, err := tail.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tail.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}
