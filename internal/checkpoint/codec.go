// Package checkpoint is the durability substrate for the incremental
// executors and the serving layer: a versioned, checksummed binary codec for
// executor state (RPAI trees, PAI maps, treemaps, group maps), CRC-framed
// records, per-shard snapshot and write-ahead-log files with generation-based
// compaction, and a crash-point injection writer for the recovery tests.
//
// The paper's value proposition is that higher-order incremental state is
// expensive to rebuild; this package makes that state durable so a restart
// recovers it from a snapshot plus a short WAL suffix instead of a full
// replay (the recovery experiment in internal/bench quantifies the speedup).
//
// Every multi-byte integer is little-endian. Every on-disk structure is built
// from checksummed records:
//
//	record := uint32 payloadLen | uint32 crc32c(payload) | payload
//
// A reader that hits a short header, a short payload, or a checksum mismatch
// reports ErrCorrupt — a torn tail is always detected, never silently
// decoded. io.EOF is returned only at a clean record boundary.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

var le = binary.LittleEndian

// Version is the checkpoint format version stamped into every snapshot and
// WAL header. Readers reject other versions.
const Version = 1

// MaxRecord bounds a single record payload (64 MiB). The cap exists so a
// corrupted length prefix cannot force a huge allocation before the checksum
// is verified.
const MaxRecord = 64 << 20

// ErrCorrupt reports a torn or corrupted record: a short header, a short
// payload, an oversized length prefix, or a checksum mismatch.
var ErrCorrupt = errors.New("checkpoint: torn or corrupt record")

// ErrCrash is the failure injected by CrashWriter once its byte budget is
// exhausted; tests use it to simulate a crash at an arbitrary write offset.
var ErrCrash = errors.New("checkpoint: injected crash")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteRecord frames payload as [len|crc32c|payload] and writes it to w.
func WriteRecord(w io.Writer, payload []byte) error {
	var hdr [8]byte
	le.PutUint32(hdr[0:4], uint32(len(payload)))
	le.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRecord reads one framed record from r. It returns io.EOF if the stream
// ends exactly at a record boundary and an error wrapping ErrCorrupt for a
// torn or corrupted record.
func ReadRecord(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	n := le.Uint32(hdr[0:4])
	if n > MaxRecord {
		return nil, fmt.Errorf("%w: length %d exceeds limit", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(payload, castagnoli) != le.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// --- primitive codec ---

// Encoder writes the codec's primitive values to an io.Writer with a sticky
// error, so state encoders read as straight-line code and check Err once.
type Encoder struct {
	w   io.Writer
	err error
	b   [8]byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write error, if any.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) write(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.write([]byte{v}) }

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	le.PutUint32(e.b[:4], v)
	e.write(e.b[:4])
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	le.PutUint64(e.b[:8], v)
	e.write(e.b[:8])
}

// F64 writes the IEEE-754 bits of v, little-endian.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(p []byte) {
	e.U32(uint32(len(p)))
	e.write(p)
}

// Str writes a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.write([]byte(s))
}

// Decoder reads the codec's primitive values with a sticky error. Methods
// return the zero value once an error has occurred; check Err at the end.
// Length-prefixed reads are capped at MaxRecord so corrupt input cannot
// force unbounded allocation.
type Decoder struct {
	r   io.Reader
	err error
	b   [8]byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Err returns the first read error, if any.
func (d *Decoder) Err() error { return d.err }

// Fail records err (if the decoder has not already failed) and is used by
// higher-level decoders to report semantic corruption.
func (d *Decoder) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) read(p []byte) bool {
	if d.err != nil {
		return false
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = fmt.Errorf("checkpoint: truncated stream: %w", err)
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.read(d.b[:1]) {
		return 0
	}
	return d.b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.read(d.b[:4]) {
		return 0
	}
	return le.Uint32(d.b[:4])
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.read(d.b[:8]) {
		return 0
	}
	return le.Uint64(d.b[:8])
}

// F64 reads an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// FiniteF64 reads a float64 and fails the decoder if it is NaN or infinite;
// tree and map keys must be finite, so a non-finite key is corruption.
func (d *Decoder) FiniteF64() float64 {
	v := d.F64()
	if d.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		d.Fail(errors.New("checkpoint: non-finite key"))
		return 0
	}
	return v
}

// Bytes reads a length-prefixed byte slice.
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxRecord {
		d.Fail(fmt.Errorf("checkpoint: byte length %d exceeds limit", n))
		return nil
	}
	p := make([]byte, n)
	if !d.read(p) {
		return nil
	}
	return p
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.Bytes()) }

// --- crash injection ---

// CrashWriter is the crash-point injection layer of the recovery tests: an
// io.Writer that accepts exactly Limit bytes and then fails every write with
// ErrCrash, truncating mid-write like a process killed during an fsync-less
// file append. Bytes returns what "reached disk".
type CrashWriter struct {
	limit   int
	buf     bytes.Buffer
	crashed bool
}

// NewCrashWriter returns a CrashWriter that accepts limit bytes.
func NewCrashWriter(limit int) *CrashWriter { return &CrashWriter{limit: limit} }

// Write implements io.Writer, truncating at the byte budget.
func (w *CrashWriter) Write(p []byte) (int, error) {
	if w.crashed {
		return 0, ErrCrash
	}
	remain := w.limit - w.buf.Len()
	if remain >= len(p) {
		w.buf.Write(p)
		return len(p), nil
	}
	if remain > 0 {
		w.buf.Write(p[:remain])
	} else {
		remain = 0
	}
	w.crashed = true
	return remain, ErrCrash
}

// Crashed reports whether the injected failure has fired.
func (w *CrashWriter) Crashed() bool { return w.crashed }

// Bytes returns the prefix that was durably "written" before the crash.
func (w *CrashWriter) Bytes() []byte { return w.buf.Bytes() }
