package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"rpai/internal/aggindex"
	"rpai/internal/treemap"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.F64(-3.25)
	e.Bytes([]byte{1, 2, 3})
	e.Str("hello")
	e.Bytes(nil)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.F64(); got != -3.25 {
		t.Fatalf("F64 = %g", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := d.Str(); got != "hello" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Fatalf("empty Bytes = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	// Reading past the end sticks an error rather than fabricating zeros
	// silently forever.
	d.U64()
	if d.Err() == nil {
		t.Fatal("decoder did not report truncation")
	}
}

func TestFiniteF64RejectsNaN(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.F64(math.NaN())
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	d.FiniteF64()
	if d.Err() == nil {
		t.Fatal("FiniteF64 accepted NaN")
	}
}

func TestRecordRoundTripAndCorruption(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("a longer record payload 123456789")}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteRecord(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()

	r := bytes.NewReader(full)
	for i, want := range payloads {
		got, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadRecord(r); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}

	// Every single-byte corruption must be detected.
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		r := bytes.NewReader(mut)
		ok := true
		for j := range payloads {
			got, err := ReadRecord(r)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip at %d: error %v does not wrap ErrCorrupt", i, err)
				}
				ok = false
				break
			}
			if !bytes.Equal(got, payloads[j]) {
				t.Fatalf("flip at %d: record %d silently decoded to %q", i, j, got)
			}
		}
		if ok {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}

	// Every truncation must either stop at a record boundary (clean EOF) or
	// report corruption — never return a wrong payload.
	for cut := 0; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		n := 0
		for {
			got, err := ReadRecord(r)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("cut at %d: error %v does not wrap ErrCorrupt", cut, err)
				}
				break
			}
			if n >= len(payloads) || !bytes.Equal(got, payloads[n]) {
				t.Fatalf("cut at %d: bogus record %q", cut, got)
			}
			n++
		}
	}
}

func TestReadRecordLengthCap(t *testing.T) {
	var hdr [8]byte
	le.PutUint32(hdr[0:4], MaxRecord+1)
	_, err := ReadRecord(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: got %v", err)
	}
}

func TestCrashWriter(t *testing.T) {
	w := NewCrashWriter(10)
	n, err := w.Write([]byte("12345678"))
	if n != 8 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrCrash) {
		t.Fatalf("crashing write: n=%d err=%v", n, err)
	}
	if !w.Crashed() {
		t.Fatal("Crashed() = false after injected failure")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash write: %v", err)
	}
	if got := string(w.Bytes()); got != "12345678ab" {
		t.Fatalf("surviving bytes = %q", got)
	}
}

func testParts() (Header, []Partition) {
	h := Header{Gen: 3, Seq: 7, Shard: 1, ShardCount: 4}
	parts := []Partition{
		{Key: []float64{1}, State: []byte("state-one")},
		{Key: []float64{2, 5}, State: []byte("state-two")},
		{Key: nil, State: nil},
	}
	return h, parts
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h, parts := testParts()
	path := SnapPath(dir, h.Gen, int(h.Shard))
	if err := WriteSnapshotFile(path, h, parts); err != nil {
		t.Fatal(err)
	}
	gh, gparts, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h {
		t.Fatalf("header = %+v, want %+v", gh, h)
	}
	if len(gparts) != len(parts) {
		t.Fatalf("got %d partitions, want %d", len(gparts), len(parts))
	}
	for i := range parts {
		if len(gparts[i].Key) != len(parts[i].Key) || !bytes.Equal(gparts[i].State, parts[i].State) {
			t.Fatalf("partition %d = %+v, want %+v", i, gparts[i], parts[i])
		}
		for j := range parts[i].Key {
			if gparts[i].Key[j] != parts[i].Key[j] {
				t.Fatalf("partition %d key mismatch", i)
			}
		}
	}
}

// TestSnapshotCrashInjectionMatrix aims a CrashWriter at every byte offset
// of a snapshot stream: the write must report the crash, and reading the
// surviving prefix must fail (the incomplete snapshot is detected, never
// silently decoded).
func TestSnapshotCrashInjectionMatrix(t *testing.T) {
	h, parts := testParts()
	var full bytes.Buffer
	if err := WriteSnapshot(&full, h, parts); err != nil {
		t.Fatal(err)
	}
	for limit := 0; limit < full.Len(); limit++ {
		cw := NewCrashWriter(limit)
		if err := WriteSnapshot(cw, h, parts); !errors.Is(err, ErrCrash) {
			t.Fatalf("limit %d: write error = %v, want ErrCrash", limit, err)
		}
		if !bytes.Equal(cw.Bytes(), full.Bytes()[:limit]) {
			t.Fatalf("limit %d: surviving prefix diverges from the full stream", limit)
		}
		if _, _, err := ReadSnapshot(bytes.NewReader(cw.Bytes())); err == nil {
			t.Fatalf("limit %d: truncated snapshot decoded without error", limit)
		}
	}
	// Sanity: the untruncated stream still decodes.
	if _, _, err := ReadSnapshot(bytes.NewReader(full.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	h := Header{Gen: 1, Seq: 2, Shard: 0, ShardCount: 2}
	path := WALPath(dir, h.Gen, int(h.Shard))
	w, err := CreateWAL(path, h)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("ev-1"), []byte("ev-two"), []byte("ev-3!"), {}, []byte("ev-five")}
	// boundaries[i] is the file size after i records: the exact set of
	// truncation points that are clean record boundaries.
	boundaries := []int64{fileSize(t, path)}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fileSize(t, path))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		gh, n, err := ReadWAL(torn, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if int64(cut) < boundaries[0] {
			// Header torn: the file is unusable and must say so.
			if err == nil {
				t.Fatalf("cut %d: torn header accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if gh != h {
			t.Fatalf("cut %d: header = %+v", cut, gh)
		}
		want := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= int64(cut) {
				want = i
			}
		}
		if n != want {
			t.Fatalf("cut %d: delivered %d records, want %d", cut, n, want)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, got[i], payloads[i])
			}
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest: %v", err)
	}
	m := Manifest{Gen: 9, Shards: 3}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("manifest = %+v, want %+v", got, m)
	}
	// Overwrite is atomic-swap semantics: the new value wins.
	m2 := Manifest{Gen: 10, Shards: 5}
	if err := WriteManifest(dir, m2); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadManifest(dir); got != m2 {
		t.Fatalf("manifest after swap = %+v, want %+v", got, m2)
	}
	// Corruption is detected.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("RPMFgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestParseName(t *testing.T) {
	cases := []struct {
		name  string
		gen   uint64
		shard int
		isWAL bool
		ok    bool
	}{
		{"g1-shard-0.snap", 1, 0, false, true},
		{"g42-shard-7.wal", 42, 7, true, true},
		{"MANIFEST", 0, 0, false, false},
		{"g1-shard-0.snap.tmp-123", 0, 0, false, false},
		{"gx-shard-0.snap", 0, 0, false, false},
		{"g1-shard--1.wal", 0, 0, false, false},
	}
	for _, c := range cases {
		gen, shard, isWAL, ok := ParseName(c.name)
		if gen != c.gen || shard != c.shard || isWAL != c.isWAL || ok != c.ok {
			t.Fatalf("ParseName(%q) = (%d,%d,%v,%v), want (%d,%d,%v,%v)",
				c.name, gen, shard, isWAL, ok, c.gen, c.shard, c.isWAL, c.ok)
		}
	}
}

func TestTreeMapCodecCanonical(t *testing.T) {
	tm := treemap.New()
	for _, kv := range [][2]float64{{5, 2}, {1, -3}, {9, 4}, {2, 0.5}} {
		tm.Put(kv[0], kv[1])
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.TreeMap(tm)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	got := d.TreeMap()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if got.Len() != tm.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tm.Len())
	}
	var buf2 bytes.Buffer
	e2 := NewEncoder(&buf2)
	e2.TreeMap(got)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("treemap re-encode is not byte-identical")
	}
	// Out-of-order entries are rejected (the canonical form is sorted).
	var bad bytes.Buffer
	be := NewEncoder(&bad)
	be.U32(2)
	be.F64(5)
	be.F64(1)
	be.F64(3)
	be.F64(1)
	bd := NewDecoder(bytes.NewReader(bad.Bytes()))
	bd.TreeMap()
	if bd.Err() == nil {
		t.Fatal("unsorted treemap entries accepted")
	}
}

func TestIndexCodecAllKinds(t *testing.T) {
	for _, kind := range aggindex.Kinds() {
		idx := aggindex.New(kind)
		for _, kv := range [][2]float64{{10, 3}, {4, 1}, {7.5, 2}, {-2, 5}} {
			idx.Add(kv[0], kv[1])
		}
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.Index(idx)
		if err := e.Err(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		d := NewDecoder(bytes.NewReader(buf.Bytes()))
		got := d.Index()
		if err := d.Err(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got.Len() != idx.Len() || got.Total() != idx.Total() {
			t.Fatalf("%s: decoded Len/Total = %d/%g, want %d/%g",
				kind, got.Len(), got.Total(), idx.Len(), idx.Total())
		}
		if got.GetSum(7.5) != idx.GetSum(7.5) {
			t.Fatalf("%s: GetSum mismatch", kind)
		}
		var buf2 bytes.Buffer
		e2 := NewEncoder(&buf2)
		e2.Index(got)
		if err := e2.Err(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: re-encode is not byte-identical", kind)
		}
	}
}
