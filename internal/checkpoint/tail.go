package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WALTail incrementally reads a WAL that another process (or goroutine) is
// still appending to — the file-tail replication substrate read replicas are
// built on. Appends to a WAL are strictly sequential, so the byte range that
// can be incomplete at any instant is a suffix: a record that fails to read
// is either an in-progress append (retry later, ErrNoRecord), the WAL being
// recreated in place by a snapshot rotation (ErrTailRotated — reopen and
// rebase from the newest snapshot), or genuine corruption (ErrCorrupt).
//
// All reads go through ReadAt with an explicitly tracked offset, so a torn
// read never advances the cursor: after ErrNoRecord the next call retries the
// same record and returns it once its bytes are complete.

// ErrNoRecord reports that the WAL ends mid-record: the tail is torn because
// the writer is still appending (or a copy was cut short). The caller retries
// after the writer makes progress.
var ErrNoRecord = errors.New("checkpoint: no complete record at WAL tail")

// ErrTailRotated reports that the WAL file was recreated under the tail — a
// snapshot rotation truncated it in place and started a new sequence. The
// caller must discard the tail and rebase from the newest snapshot.
var ErrTailRotated = errors.New("checkpoint: WAL rotated under tail")

// WALTail is a cursor over one shard WAL. Not safe for concurrent use.
type WALTail struct {
	f   *os.File
	h   Header
	off int64 // file offset of the next unread record
}

// OpenWALTail opens a WAL for tailing and reads its header. A file whose
// magic or header record is still incomplete returns ErrNoRecord (the writer
// is mid-create; retry); a missing file returns the os error.
func OpenWALTail(path string) (*WALTail, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, len(walMagic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		f.Close()
		if isShortRead(err) {
			return nil, ErrNoRecord
		}
		return nil, err
	}
	if string(magic) != walMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, magic)
	}
	payload, off, err := readRecordAt(f, int64(len(walMagic)))
	if err != nil {
		f.Close()
		return nil, err
	}
	h, err := decodeHeader(payload)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &WALTail{f: f, h: h, off: off}, nil
}

// Header returns the WAL's header (generation, sequence, shard).
func (t *WALTail) Header() Header { return t.h }

// Offset returns the file offset of the next unread record.
func (t *WALTail) Offset() int64 { return t.off }

// Next returns the next complete record's payload. ErrNoRecord means the
// tail is torn mid-record — call again once the writer has flushed more.
// ErrTailRotated means the file was recreated in place; the cursor is dead
// and the caller rebases. Any other error wraps ErrCorrupt.
func (t *WALTail) Next() ([]byte, error) {
	payload, next, err := readRecordAt(t.f, t.off)
	if err == nil {
		t.off = next
		return payload, nil
	}
	if t.rotated() {
		return nil, ErrTailRotated
	}
	return nil, err
}

// Close releases the underlying file.
func (t *WALTail) Close() error { return t.f.Close() }

// rotated distinguishes an in-place WAL recreation from a torn tail or
// corruption: the file shrank below the cursor, or its header record no
// longer matches the one the tail was opened against.
func (t *WALTail) rotated() bool {
	st, err := t.f.Stat()
	if err != nil || st.Size() < t.off {
		return true
	}
	magic := make([]byte, len(walMagic))
	if _, err := t.f.ReadAt(magic, 0); err != nil || string(magic) != walMagic {
		return true
	}
	payload, _, err := readRecordAt(t.f, int64(len(walMagic)))
	if err != nil {
		// The header is unreadable but the file did not shrink: that is
		// corruption at the head, not a rotation.
		return false
	}
	h, err := decodeHeader(payload)
	if err != nil {
		return true
	}
	return h != t.h
}

// readRecordAt reads one framed record at off without moving any file
// cursor, returning the payload and the offset one past the record. A read
// that runs off the end of the file maps to ErrNoRecord.
func readRecordAt(f *os.File, off int64) ([]byte, int64, error) {
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		if isShortRead(err) {
			return nil, 0, ErrNoRecord
		}
		return nil, 0, err
	}
	n := le.Uint32(hdr[0:4])
	if n > MaxRecord {
		return nil, 0, fmt.Errorf("%w: length %d exceeds limit", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, off+8); err != nil {
		if isShortRead(err) {
			return nil, 0, ErrNoRecord
		}
		return nil, 0, err
	}
	if crc32.Checksum(payload, castagnoli) != le.Uint32(hdr[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, off + 8 + int64(n), nil
}

func isShortRead(err error) bool {
	return err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)
}
