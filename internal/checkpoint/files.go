package checkpoint

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// On-disk layout of a checkpoint directory (one generation G, S shards):
//
//	MANIFEST                 current generation + shard count (tmp+rename)
//	g<G>-shard-<i>.snap      snapshot of shard i's partitions at sequence Q
//	g<G>-shard-<i>.wal       events applied after sequence Q (may be absent)
//
// A snapshot file is magic "RPSN" followed by CRC-framed records: a header,
// one record per partition, and a trailer whose presence marks the file
// complete (a crash mid-write leaves no trailer and the file is rejected). A
// WAL file is magic "RPWL", a header record, then one record per event; a
// torn tail is expected after a crash and reading stops at the first bad
// record. Snapshot and WAL are tied by the Seq header field: the WAL with
// Seq Q holds exactly the events applied after the snapshot with Seq Q, so
// recovery is decode(snapshot) + replay(WAL) with no double-application.
//
// Writers rotate within a generation by rewriting the same paths
// (tmp+rename for snapshots, truncate for the WAL); a shard-count change or
// recovery starts generation G+1, and the MANIFEST is swapped only after
// every shard of G+1 is durable, after which generation G's files are
// removed. Recovery scans for the highest generation whose files are all
// complete and mutually consistent, so a crash at any point falls back to
// the previous durable generation.

const (
	snapMagic     = "RPSN"
	walMagic      = "RPWL"
	manifestMagic = "RPMF"

	// ManifestName is the checkpoint directory's current-generation pointer.
	ManifestName = "MANIFEST"

	// SnapSuffix and WALSuffix name the per-shard file kinds.
	SnapSuffix = ".snap"
	WALSuffix  = ".wal"
)

// Header identifies one shard's snapshot or WAL file.
type Header struct {
	Gen        uint64 // checkpoint generation the file belongs to
	Seq        uint64 // snapshot sequence; a WAL with Seq q follows snapshot q
	Shard      uint32 // shard index within the generation
	ShardCount uint32 // shard count of the generation (consistency check)
}

func (e *Encoder) header(h Header) {
	e.U32(Version)
	e.U64(h.Gen)
	e.U64(h.Seq)
	e.U32(h.Shard)
	e.U32(h.ShardCount)
}

func decodeHeader(payload []byte) (Header, error) {
	d := NewDecoder(bytes.NewReader(payload))
	if v := d.U32(); d.Err() == nil && v != Version {
		return Header{}, fmt.Errorf("checkpoint: unsupported format version %d", v)
	}
	h := Header{Gen: d.U64(), Seq: d.U64(), Shard: d.U32(), ShardCount: d.U32()}
	if d.Err() != nil {
		return Header{}, d.Err()
	}
	if h.ShardCount == 0 || h.Shard >= h.ShardCount {
		return Header{}, fmt.Errorf("checkpoint: invalid header shard %d/%d", h.Shard, h.ShardCount)
	}
	return h, nil
}

func headerRecord(h Header) ([]byte, error) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.header(h)
	if err := e.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SnapPath returns the snapshot path for a generation's shard.
func SnapPath(dir string, gen uint64, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("g%d-shard-%d%s", gen, shard, SnapSuffix))
}

// WALPath returns the WAL path for a generation's shard.
func WALPath(dir string, gen uint64, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("g%d-shard-%d%s", gen, shard, WALSuffix))
}

// ParseName parses a per-shard checkpoint file name, reporting its
// generation, shard index and kind. ok is false for foreign files.
func ParseName(name string) (gen uint64, shard int, isWAL bool, ok bool) {
	switch {
	case strings.HasSuffix(name, SnapSuffix):
		name = strings.TrimSuffix(name, SnapSuffix)
	case strings.HasSuffix(name, WALSuffix):
		name = strings.TrimSuffix(name, WALSuffix)
		isWAL = true
	default:
		return 0, 0, false, false
	}
	rest, found := strings.CutPrefix(name, "g")
	if !found {
		return 0, 0, false, false
	}
	gs, ss, found := strings.Cut(rest, "-shard-")
	if !found {
		return 0, 0, false, false
	}
	g, err1 := strconv.ParseUint(gs, 10, 64)
	s, err2 := strconv.Atoi(ss)
	if err1 != nil || err2 != nil || s < 0 {
		return 0, 0, false, false
	}
	return g, s, isWAL, true
}

// --- snapshot files ---

// Partition is one partition inside a shard snapshot: its key columns plus
// the opaque executor state produced by the engine's Snapshotter.
type Partition struct {
	Key   []float64
	State []byte
}

// trailer payload: marks a snapshot stream complete.
func trailerRecord(h Header) []byte {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Str("END")
	e.U64(h.Seq)
	return buf.Bytes()
}

// WriteSnapshot writes one shard's snapshot stream to w. It is separated
// from WriteSnapshotFile so the crash-injection tests can aim a CrashWriter
// at every byte offset of the stream.
func WriteSnapshot(w io.Writer, h Header, parts []Partition) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	hr, err := headerRecord(h)
	if err != nil {
		return err
	}
	if err := WriteRecord(w, hr); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, p := range parts {
		buf.Reset()
		e := NewEncoder(&buf)
		e.U32(uint32(len(p.Key)))
		for _, v := range p.Key {
			e.F64(v)
		}
		e.Bytes(p.State)
		if err := e.Err(); err != nil {
			return err
		}
		if err := WriteRecord(w, buf.Bytes()); err != nil {
			return err
		}
	}
	return WriteRecord(w, trailerRecord(h))
}

// ReadSnapshot decodes a snapshot stream, verifying magic, version, per-
// record checksums and the completeness trailer.
func ReadSnapshot(r io.Reader) (Header, []Partition, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return Header{}, nil, fmt.Errorf("%w: short snapshot magic: %v", ErrCorrupt, err)
	}
	if string(magic) != snapMagic {
		return Header{}, nil, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, magic)
	}
	hp, err := ReadRecord(br)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: missing snapshot header", ErrCorrupt)
		}
		return Header{}, nil, err
	}
	h, err := decodeHeader(hp)
	if err != nil {
		return Header{}, nil, err
	}
	var parts []Partition
	want := trailerRecord(h)
	for {
		payload, err := ReadRecord(br)
		if err != nil {
			if err == io.EOF {
				return Header{}, nil, fmt.Errorf("%w: snapshot missing trailer", ErrCorrupt)
			}
			return Header{}, nil, err
		}
		if bytes.Equal(payload, want) {
			if _, err := ReadRecord(br); err != io.EOF {
				return Header{}, nil, fmt.Errorf("%w: data after snapshot trailer", ErrCorrupt)
			}
			return h, parts, nil
		}
		d := NewDecoder(bytes.NewReader(payload))
		nk := d.U32()
		if d.Err() == nil && nk > 64 {
			return Header{}, nil, fmt.Errorf("%w: partition key width %d", ErrCorrupt, nk)
		}
		key := make([]float64, nk)
		for i := range key {
			key[i] = d.F64()
		}
		state := d.Bytes()
		if d.Err() != nil {
			return Header{}, nil, fmt.Errorf("%w: partition record: %v", ErrCorrupt, d.Err())
		}
		parts = append(parts, Partition{Key: key, State: state})
	}
}

// WriteSnapshotFile writes the snapshot atomically: to a temp file in the
// same directory, synced, then renamed over the target path.
func WriteSnapshotFile(path string, h Header, parts []Partition) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := WriteSnapshot(bw, h, parts); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadSnapshotFile reads and verifies one shard snapshot.
func ReadSnapshotFile(path string) (Header, []Partition, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// --- WAL files ---

// WALWriter appends length-prefixed, checksummed event records to a shard's
// write-ahead log. Append buffers; Flush pushes the buffer to the OS (the
// serving layer flushes when a shard goes idle and before acknowledging a
// Drain barrier). Durability is against process crashes; Sync additionally
// forces the file to stable storage.
type WALWriter struct {
	f  *os.File
	bw *bufio.Writer
}

// walBufSize is the writer's in-process buffer. The serving layer group-
// commits across batches under sustained load, so the buffer is sized to
// hold many batch records between flushes instead of bufio's 4 KiB default
// (which would force a write syscall nearly every batch anyway).
const walBufSize = 64 << 10

// CreateWAL creates (or truncates) the WAL at path and writes its header.
func CreateWAL(path string, h Header) (*WALWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &WALWriter{f: f, bw: bufio.NewWriterSize(f, walBufSize)}
	hr, err := headerRecord(h)
	if err == nil {
		_, err = io.WriteString(w.bw, walMagic)
	}
	if err == nil {
		err = WriteRecord(w.bw, hr)
	}
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// Append buffers one event record.
func (w *WALWriter) Append(payload []byte) error { return WriteRecord(w.bw, payload) }

// Flush pushes buffered records to the OS.
func (w *WALWriter) Flush() error { return w.bw.Flush() }

// Sync flushes and forces the log to stable storage.
func (w *WALWriter) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log file.
func (w *WALWriter) Close() error {
	if err := w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReadWAL replays a shard WAL: it verifies the magic and header, calls fn
// for every intact event record in order, and stops at the first torn or
// corrupt record — the expected shape of a crashed log's tail. It returns
// the header and the number of events delivered. A missing or torn header
// is an error (the file tells us nothing); a torn tail is not.
func ReadWAL(path string, fn func(payload []byte) error) (Header, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return Header{}, 0, fmt.Errorf("%w: short WAL magic: %v", ErrCorrupt, err)
	}
	if string(magic) != walMagic {
		return Header{}, 0, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, magic)
	}
	hp, err := ReadRecord(br)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: missing WAL header", ErrCorrupt)
		}
		return Header{}, 0, err
	}
	h, err := decodeHeader(hp)
	if err != nil {
		return Header{}, 0, err
	}
	n := 0
	for {
		payload, err := ReadRecord(br)
		if err != nil {
			// io.EOF is a clean end; ErrCorrupt here is a torn tail, which
			// recovery tolerates by construction.
			return h, n, nil
		}
		if err := fn(payload); err != nil {
			return h, n, err
		}
		n++
	}
}

// --- manifest ---

// Manifest is the checkpoint directory's current-generation pointer.
type Manifest struct {
	Gen    uint64
	Shards uint32
}

// WriteManifest atomically swaps the directory's MANIFEST.
func WriteManifest(dir string, m Manifest) error {
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	var rec bytes.Buffer
	re := NewEncoder(&rec)
	re.U32(Version)
	re.U64(m.Gen)
	re.U32(m.Shards)
	if err := re.Err(); err != nil {
		return err
	}
	if err := WriteRecord(&buf, rec.Bytes()); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, ManifestName))
}

// ReadManifest reads the directory's MANIFEST. A missing file returns an
// error satisfying errors.Is(err, os.ErrNotExist).
func ReadManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	if len(b) < len(manifestMagic) || string(b[:len(manifestMagic)]) != manifestMagic {
		return Manifest{}, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	payload, err := ReadRecord(bytes.NewReader(b[len(manifestMagic):]))
	if err != nil {
		return Manifest{}, err
	}
	d := NewDecoder(bytes.NewReader(payload))
	if v := d.U32(); d.Err() == nil && v != Version {
		return Manifest{}, fmt.Errorf("checkpoint: unsupported manifest version %d", v)
	}
	m := Manifest{Gen: d.U64(), Shards: d.U32()}
	if d.Err() != nil {
		return Manifest{}, d.Err()
	}
	if m.Shards == 0 {
		return Manifest{}, errors.New("checkpoint: manifest shard count is zero")
	}
	return m, nil
}
