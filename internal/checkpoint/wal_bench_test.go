package checkpoint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// benchWAL measures appending n records of size recSize with a caller-chosen
// flush policy. flushEvery=1 is the pre-deferral serving-layer behavior (one
// bufio flush — i.e. one write(2) once the buffer fills — per group commit);
// flushEvery=0 flushes only at the end, the behavior when a shard never goes
// idle under sustained load.
func benchWAL(b *testing.B, recSize, flushEvery int) {
	payload := make([]byte, recSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	dir := b.TempDir()
	b.SetBytes(int64(recSize))
	b.ResetTimer()
	var w *WALWriter
	var err error
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 { // rotate so single files stay bounded
			if w != nil {
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			w, err = CreateWAL(filepath.Join(dir, fmt.Sprintf("w%d.wal", i)), Header{Shard: 0, Seq: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
		if flushEvery > 0 && i%flushEvery == 0 {
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALAppendFlushPerRecord is the old group-commit policy: the shard
// worker flushed the WAL on every commit, so each batch record paid a flush.
func BenchmarkWALAppendFlushPerRecord(b *testing.B) { benchWAL(b, 256, 1) }

// BenchmarkWALAppendFlushDeferred is the current policy under sustained load:
// records accumulate in the 64 KiB writer buffer and flush only when the
// shard goes idle or a Drain barrier demands durability.
func BenchmarkWALAppendFlushDeferred(b *testing.B) { benchWAL(b, 256, 0) }
