package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecords fuzzes the WAL/record parser from both sides. The input
// bytes are used twice:
//
//  1. Adversarial parse: the raw bytes are appended after a valid WAL
//     header and the reader must neither panic nor mis-deliver — every
//     record it yields must be one the framing's checksum actually covers.
//  2. Structured round trip: the bytes are chopped into event payloads,
//     written through WALWriter, and read back; the full file must replay
//     exactly, and a fuzzer-chosen truncation must replay a clean prefix.
//
// Run with `go test -fuzz FuzzWALRecords ./internal/checkpoint`; the seed
// corpus under testdata/fuzz executes under plain `go test`.
func FuzzWALRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0}, 40))
	f.Add([]byte("RPWL garbage that is not a record"))
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 200, 16, 7, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		h := Header{Gen: 1, Seq: 1, Shard: 0, ShardCount: 1}

		// 1. A valid header followed by arbitrary bytes: parsing must be
		// total (no panic) and must stop at the first bad record.
		raw := filepath.Join(dir, "raw.wal")
		w, err := CreateWAL(raw, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		fh, err := os.OpenFile(raw, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(data); err != nil {
			t.Fatal(err)
		}
		fh.Close()
		if _, n, err := ReadWAL(raw, func([]byte) error { return nil }); err != nil {
			t.Fatalf("ReadWAL over arbitrary tail: %v", err)
		} else if n < 0 {
			t.Fatalf("negative record count %d", n)
		}

		// Arbitrary bytes through the bare record reader, too.
		r := bytes.NewReader(data)
		for {
			if _, err := ReadRecord(r); err != nil {
				if err != io.EOF && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("ReadRecord error class: %v", err)
				}
				break
			}
		}

		// 2. Structured round trip: chop data into payloads.
		var payloads [][]byte
		for i := 0; i < len(data); {
			n := int(data[i])%7 + 1
			if i+1+n > len(data) {
				n = len(data) - i - 1
			}
			if n < 0 {
				break
			}
			payloads = append(payloads, data[i+1:i+1+n])
			i += 1 + n
		}
		path := WALPath(dir, h.Gen, 0)
		w, err = CreateWAL(path, h)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range payloads {
			if err := w.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		gh, n, err := ReadWAL(path, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if gh != h || n != len(payloads) {
			t.Fatalf("replayed %d records (header %+v), want %d", n, gh, len(payloads))
		}
		for i := range payloads {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("record %d = %q, want %q", i, got[i], payloads[i])
			}
		}

		// Fuzzer-chosen truncation: the torn file must replay a clean prefix.
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := 0
		if len(data) > 0 {
			cut = int(data[0]) * len(full) / 256
		}
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var tgot [][]byte
		_, tn, terr := ReadWAL(torn, func(p []byte) error {
			tgot = append(tgot, append([]byte(nil), p...))
			return nil
		})
		if terr != nil {
			// Only a torn header may fail; then the file is rejected whole.
			return
		}
		if tn > len(payloads) {
			t.Fatalf("torn replay yielded %d records, full file had %d", tn, len(payloads))
		}
		for i := 0; i < tn; i++ {
			if !bytes.Equal(tgot[i], payloads[i]) {
				t.Fatalf("torn record %d = %q, want %q (not a prefix)", i, tgot[i], payloads[i])
			}
		}
	})
}
