package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"rpai/internal/aggindex"
	"rpai/internal/fenwick"
	"rpai/internal/paimap"
	"rpai/internal/rpai"
	"rpai/internal/rpaibtree"
	"rpai/internal/treemap"
)

// This file encodes the engine's index structures. Two regimes:
//
//   - The RPAI tree has its own structural codec (rpai.Encode/Decode) that
//     preserves the exact node layout — parent-relative keys, subtree sums,
//     link colors — so a restored tree is bit-identical, not merely
//     equivalent. The pointer and arena representations share this codec
//     byte-for-byte and therefore share one tag; decode always produces the
//     arena form. The stream is embedded length-prefixed because the decoder
//     buffers its reader and would otherwise over-read the enclosing stream.
//   - Every other structure (treemaps, PAI maps, the sorted/fenwick/btree
//     index baselines) is encoded as its canonical sorted entry list and
//     rebuilt by insertion. Entry lists are canonical regardless of the
//     in-memory shape, so encode(decode(encode(x))) == encode(x) holds for
//     them too.

// Index kind tags in encoded streams. Stable on-disk values: never renumber.
const (
	idxRPAI    = 1
	idxBTree   = 2
	idxPAI     = 3
	idxSorted  = 4
	idxFenwick = 5
)

// TreeMap encodes t as its sorted entry list. t must be non-nil; callers
// encode structure presence separately (it is derivable from the query).
func (e *Encoder) TreeMap(t *treemap.Tree) {
	e.U32(uint32(t.Len()))
	t.Ascend(func(k, v float64) bool {
		e.F64(k)
		e.F64(v)
		return e.err == nil
	})
}

// TreeMap decodes an entry list into a fresh treemap, validating that keys
// are finite and strictly ascending (the canonical form TreeMap writes).
func (d *Decoder) TreeMap() *treemap.Tree {
	t := treemap.New()
	n := d.U32()
	var prev float64
	for i := uint32(0); i < n && d.err == nil; i++ {
		k := d.FiniteF64()
		v := d.F64()
		if d.err != nil {
			break
		}
		if i > 0 && k <= prev {
			d.Fail(errors.New("checkpoint: treemap keys not strictly ascending"))
			break
		}
		prev = k
		t.Put(k, v)
	}
	return t
}

// F64Map encodes a float-keyed map as its sorted entry list (the canonical
// order; Go map iteration order is random).
func (e *Encoder) F64Map(m map[float64]float64) {
	e.U32(uint32(len(m)))
	for _, k := range sortedKeys(m) {
		e.F64(k)
		e.F64(m[k])
	}
}

// F64Map decodes a sorted entry list into m (which must be non-nil when the
// list is non-empty; engine constructors allocate their maps up front).
func (d *Decoder) F64Map(m map[float64]float64) {
	n := d.U32()
	var prev float64
	for i := uint32(0); i < n && d.err == nil; i++ {
		k := d.FiniteF64()
		v := d.F64()
		if d.err != nil {
			break
		}
		if i > 0 && k <= prev {
			d.Fail(errors.New("checkpoint: map keys not strictly ascending"))
			break
		}
		prev = k
		m[k] = v
	}
}

func sortedKeys(m map[float64]float64) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Keys are finite (engine state never holds NaN keys), so a simple sort
	// is total.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Index encodes an aggregate index with a kind tag. RPAI trees use the
// structural codec; the rest are sorted entry lists.
func (e *Encoder) Index(idx aggindex.Index) {
	switch t := idx.(type) {
	case *rpai.Tree:
		e.U8(idxRPAI)
		e.rpaiStream(t.Encode)
	case *rpai.ArenaTree:
		// The arena tree shares the pointer tree's structural codec
		// byte-for-byte, so both encode under the same tag and snapshots
		// restore across the two representations in either direction.
		e.U8(idxRPAI)
		e.rpaiStream(t.Encode)
	case *rpaibtree.Tree:
		e.U8(idxBTree)
		e.indexEntries(idx)
	case *paimap.Map:
		e.U8(idxPAI)
		e.indexEntries(idx)
	case *aggindex.Sorted:
		e.U8(idxSorted)
		e.indexEntries(idx)
	case *fenwick.Index:
		e.U8(idxFenwick)
		e.indexEntries(idx)
	default:
		e.err = fmt.Errorf("checkpoint: unknown index type %T", idx)
	}
}

func (e *Encoder) rpaiStream(encode func(io.Writer) error) {
	var buf bytes.Buffer
	if e.err == nil {
		if err := encode(&buf); err != nil {
			e.err = err
			return
		}
	}
	e.Bytes(buf.Bytes())
}

func (e *Encoder) indexEntries(idx aggindex.Index) {
	e.U32(uint32(idx.Len()))
	idx.Ascend(func(k, v float64) bool {
		e.F64(k)
		e.F64(v)
		return e.err == nil
	})
}

// Index decodes an aggregate index written by Encoder.Index.
func (d *Decoder) Index() aggindex.Index {
	var kind aggindex.Kind
	switch tag := d.U8(); tag {
	case idxRPAI:
		// Restore into the arena representation regardless of which
		// representation wrote the stream: the codecs are byte-identical,
		// and executors hold the index behind the aggindex.Index interface.
		b := d.Bytes()
		if d.err != nil {
			return nil
		}
		t, err := rpai.DecodeArena(bytes.NewReader(b))
		if err != nil {
			d.Fail(err)
			return nil
		}
		return t
	case idxBTree:
		kind = aggindex.KindBTree
	case idxPAI:
		kind = aggindex.KindPAI
	case idxSorted:
		kind = aggindex.KindSorted
	case idxFenwick:
		kind = aggindex.KindFenwick
	default:
		if d.err == nil {
			d.Fail(fmt.Errorf("checkpoint: unknown index kind tag %d", tag))
		}
		return nil
	}
	idx := aggindex.New(kind)
	n := d.U32()
	var prev float64
	for i := uint32(0); i < n && d.err == nil; i++ {
		k := d.FiniteF64()
		v := d.F64()
		if d.err != nil {
			break
		}
		if i > 0 && k <= prev {
			d.Fail(errors.New("checkpoint: index keys not strictly ascending"))
			break
		}
		prev = k
		idx.Put(k, v)
	}
	return idx
}
