package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Fork clones a checkpoint directory into dst: every file under src is copied
// byte for byte, each copy is synced before the next starts, and the
// destination directories are synced last, so a completed Fork is exactly as
// durable as the source checkpoint it was taken from. Fork is how a caller
// reuses an existing snapshot as the starting state of another consumer — a
// late-joining query forking its family's state set, a generation rotation
// carrying forward a snapshot whose state has not advanced — without
// re-serializing the live executors or replaying the history the snapshot
// already embodies.
//
// dst must not exist (a half-written previous fork must be removed by the
// caller, who knows whether anything references it); src must be a directory.
// Fork itself is not atomic — a crash mid-fork leaves a torn dst — so callers
// must only commit references to dst (manifest swaps, catalog entries) after
// Fork returns.
func Fork(src, dst string) error {
	info, err := os.Stat(src)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return fmt.Errorf("checkpoint: fork source %s is not a directory", src)
	}
	if _, err := os.Stat(dst); err == nil {
		return fmt.Errorf("checkpoint: fork destination %s already exists", dst)
	} else if !os.IsNotExist(err) {
		return err
	}
	if err := forkTree(src, dst); err != nil {
		return err
	}
	// Sync the parent so the new directory entry itself is durable.
	return syncDir(filepath.Dir(dst))
}

// forkTree recursively copies one directory level and syncs it.
func forkTree(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, ent := range entries {
		sp := filepath.Join(src, ent.Name())
		dp := filepath.Join(dst, ent.Name())
		if ent.IsDir() {
			if err := forkTree(sp, dp); err != nil {
				return err
			}
			continue
		}
		if err := copyFileSync(sp, dp); err != nil {
			return err
		}
	}
	return syncDir(dst)
}

// copyFileSync copies one file and forces it to stable storage.
func copyFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
