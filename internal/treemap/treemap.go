// Package treemap implements a sum-augmented ordered map based on a
// left-leaning red-black tree (LLRB, Sedgewick 2008).
//
// Keys are float64 column values (prices, volumes, quantities) and values are
// float64 aggregates. Every node additionally maintains the number of entries
// and the sum of values in its subtree, so the map answers prefix-sum queries
// ("sum of all values whose key <= k") and rank queries in O(log n). These are
// the free/bound maps of the paper's general incrementalization algorithm
// (SIGMOD '22, section 4.2) and the building block for executors that need
// ordered aggregates keyed by column values (PSP, Q17).
//
// Unlike the RPAI tree (package rpai), keys here are stored absolutely: this
// structure does not support key shifting.
package treemap

import "fmt"

const (
	red   = true
	black = false
)

type node struct {
	key    float64
	value  float64
	left   *node
	right  *node
	color  bool // color of the link from the parent
	size   int
	sum    float64
	minKey float64
	maxKey float64
}

// Tree is a sum-augmented ordered map from float64 keys to float64 values.
// The zero value is not usable; call New.
type Tree struct {
	root *node
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len reports the number of entries.
func (t *Tree) Len() int { return t.root.sizeOf() }

// Total returns the sum of all values in the map.
func (t *Tree) Total() float64 { return t.root.sumOf() }

func (n *node) sizeOf() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) sumOf() float64 {
	if n == nil {
		return 0
	}
	return n.sum
}

func isRed(n *node) bool { return n != nil && n.color == red }

// update recomputes the augmented fields of n from its children.
func (n *node) update() {
	n.size = 1 + n.left.sizeOf() + n.right.sizeOf()
	n.sum = n.value + n.left.sumOf() + n.right.sumOf()
	n.minKey = n.key
	if n.left != nil {
		n.minKey = n.left.minKey
	}
	n.maxKey = n.key
	if n.right != nil {
		n.maxKey = n.right.maxKey
	}
}

func rotateLeft(h *node) *node {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	h.update()
	x.update()
	return x
}

func rotateRight(h *node) *node {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	h.update()
	x.update()
	return x
}

func flipColors(h *node) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

func fixUp(h *node) *node {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	h.update()
	return h
}

// Get returns the value stored under k, and whether k is present.
func (t *Tree) Get(k float64) (float64, bool) {
	n := t.root
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n.value, true
		}
	}
	return 0, false
}

// Contains reports whether k is present.
func (t *Tree) Contains(k float64) bool {
	_, ok := t.Get(k)
	return ok
}

// Put stores v under k, replacing any existing value.
func (t *Tree) Put(k, v float64) {
	t.root = put(t.root, k, v)
	t.root.color = black
}

func put(h *node, k, v float64) *node {
	if h == nil {
		n := &node{key: k, value: v, color: red}
		n.update()
		return n
	}
	switch {
	case k < h.key:
		h.left = put(h.left, k, v)
	case k > h.key:
		h.right = put(h.right, k, v)
	default:
		h.value = v
	}
	return fixUp(h)
}

// Add adds dv to the value stored under k, inserting the key with value dv if
// absent. The entry remains present even if its value becomes zero; callers
// that want to drop empty entries should Delete explicitly.
func (t *Tree) Add(k, dv float64) {
	if v, ok := t.Get(k); ok {
		t.Put(k, v+dv)
		return
	}
	t.Put(k, dv)
}

// Delete removes k and reports whether it was present.
func (t *Tree) Delete(k float64) bool {
	if !t.Contains(k) {
		return false
	}
	t.root = del(t.root, k)
	if t.root != nil {
		t.root.color = black
	}
	return true
}

func moveRedLeft(h *node) *node {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *node) *node {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode(h *node) *node {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin(h *node) *node {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

func del(h *node, k float64) *node {
	if k < h.key {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = del(h.left, k)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if k == h.key && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if k == h.key {
			m := minNode(h.right)
			h.key = m.key
			h.value = m.value
			h.right = deleteMin(h.right)
		} else {
			h.right = del(h.right, k)
		}
	}
	return fixUp(h)
}

// Min returns the smallest key, or ok=false if the map is empty.
func (t *Tree) Min() (float64, bool) {
	if t.root == nil {
		return 0, false
	}
	return t.root.minKey, true
}

// Max returns the largest key, or ok=false if the map is empty.
func (t *Tree) Max() (float64, bool) {
	if t.root == nil {
		return 0, false
	}
	return t.root.maxKey, true
}

// PrefixSum returns the sum of values over all entries with key <= k.
func (t *Tree) PrefixSum(k float64) float64 {
	var s float64
	n := t.root
	for n != nil {
		if k < n.key {
			n = n.left
		} else {
			s += n.value + n.left.sumOf()
			n = n.right
		}
	}
	return s
}

// PrefixSumLess returns the sum of values over all entries with key < k.
func (t *Tree) PrefixSumLess(k float64) float64 {
	var s float64
	n := t.root
	for n != nil {
		if k <= n.key {
			n = n.left
		} else {
			s += n.value + n.left.sumOf()
			n = n.right
		}
	}
	return s
}

// SuffixSum returns the sum of values over all entries with key >= k.
func (t *Tree) SuffixSum(k float64) float64 {
	return t.Total() - t.PrefixSumLess(k)
}

// SuffixSumGreater returns the sum of values over all entries with key > k.
func (t *Tree) SuffixSumGreater(k float64) float64 {
	return t.Total() - t.PrefixSum(k)
}

// CountLE returns the number of entries with key <= k.
func (t *Tree) CountLE(k float64) int {
	var c int
	n := t.root
	for n != nil {
		if k < n.key {
			n = n.left
		} else {
			c += 1 + n.left.sizeOf()
			n = n.right
		}
	}
	return c
}

// CountLess returns the number of entries with key < k.
func (t *Tree) CountLess(k float64) int {
	var c int
	n := t.root
	for n != nil {
		if k <= n.key {
			n = n.left
		} else {
			c += 1 + n.left.sizeOf()
			n = n.right
		}
	}
	return c
}

// CountGreater returns the number of entries with key > k.
func (t *Tree) CountGreater(k float64) int { return t.Len() - t.CountLE(k) }

// Ascend calls fn for each entry in increasing key order until fn returns
// false.
func (t *Tree) Ascend(fn func(k, v float64) bool) { ascend(t.root, fn) }

func ascend(n *node, fn func(k, v float64) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return ascend(n.right, fn)
}

// Descend calls fn for each entry in decreasing key order until fn returns
// false.
func (t *Tree) Descend(fn func(k, v float64) bool) { descend(t.root, fn) }

func descend(n *node, fn func(k, v float64) bool) bool {
	if n == nil {
		return true
	}
	if !descend(n.right, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return descend(n.left, fn)
}

// Ceiling returns the smallest key >= k.
func (t *Tree) Ceiling(k float64) (float64, bool) {
	var best float64
	found := false
	n := t.root
	for n != nil {
		if n.key >= k {
			best, found = n.key, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return best, found
}

// Floor returns the largest key <= k.
func (t *Tree) Floor(k float64) (float64, bool) {
	var best float64
	found := false
	n := t.root
	for n != nil {
		if n.key <= k {
			best, found = n.key, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return best, found
}

// Keys returns all keys in increasing order. Intended for tests and small
// maps; O(n).
func (t *Tree) Keys() []float64 {
	out := make([]float64, 0, t.Len())
	t.Ascend(func(k, _ float64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Validate checks the BST order, LLRB shape invariants and the augmented
// size/sum/min/max fields. It returns a descriptive error on the first
// violation found. Intended for tests.
func (t *Tree) Validate() error {
	if t.root == nil {
		return nil
	}
	if isRed(t.root) {
		return fmt.Errorf("treemap: root is red")
	}
	_, err := validate(t.root)
	return err
}

func validate(n *node) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	if isRed(n.right) {
		return 0, fmt.Errorf("treemap: right-leaning red link at key %v", n.key)
	}
	if isRed(n) && isRed(n.left) {
		return 0, fmt.Errorf("treemap: two consecutive red links at key %v", n.key)
	}
	if n.left != nil && n.left.maxKey >= n.key {
		return 0, fmt.Errorf("treemap: BST order violated left of key %v", n.key)
	}
	if n.right != nil && n.right.minKey <= n.key {
		return 0, fmt.Errorf("treemap: BST order violated right of key %v", n.key)
	}
	lh, err := validate(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := validate(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("treemap: black height mismatch at key %v (%d vs %d)", n.key, lh, rh)
	}
	if n.size != 1+n.left.sizeOf()+n.right.sizeOf() {
		return 0, fmt.Errorf("treemap: size mismatch at key %v", n.key)
	}
	want := n.value + n.left.sumOf() + n.right.sumOf()
	if n.sum != want {
		return 0, fmt.Errorf("treemap: sum mismatch at key %v: have %v want %v", n.key, n.sum, want)
	}
	wantMin, wantMax := n.key, n.key
	if n.left != nil {
		wantMin = n.left.minKey
	}
	if n.right != nil {
		wantMax = n.right.maxKey
	}
	if n.minKey != wantMin || n.maxKey != wantMax {
		return 0, fmt.Errorf("treemap: min/max mismatch at key %v", n.key)
	}
	if !isRed(n) {
		blackHeight = 1
	}
	return blackHeight + lh, nil
}

// Higher returns the smallest key strictly greater than k.
func (t *Tree) Higher(k float64) (float64, bool) {
	var best float64
	found := false
	n := t.root
	for n != nil {
		if n.key > k {
			best, found = n.key, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return best, found
}

// Lower returns the largest key strictly less than k.
func (t *Tree) Lower(k float64) (float64, bool) {
	var best float64
	found := false
	n := t.root
	for n != nil {
		if n.key < k {
			best, found = n.key, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return best, found
}

// FirstPrefixGreater returns the smallest key k* such that PrefixSum(k*)
// exceeds th, in O(log n). It requires all values to be non-negative (prefix
// sums monotone in the key), which holds for the volume maps the executors
// maintain. ok is false when even the total does not exceed th.
func (t *Tree) FirstPrefixGreater(th float64) (float64, bool) {
	if t.root == nil || t.root.sum <= th {
		return 0, false
	}
	n := t.root
	for {
		ls := n.left.sumOf()
		switch {
		case ls > th:
			n = n.left
		case ls+n.value > th:
			return n.key, true
		default:
			th -= ls + n.value
			n = n.right
		}
	}
}

// AscendRange calls fn for each entry with key in [lo, hi), in increasing
// order, until fn returns false.
func (t *Tree) AscendRange(lo, hi float64, fn func(k, v float64) bool) {
	ascendRange(t.root, lo, hi, fn)
}

func ascendRange(n *node, lo, hi float64, fn func(k, v float64) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= lo {
		if !ascendRange(n.left, lo, hi, fn) {
			return false
		}
		if n.key < hi && !fn(n.key, n.value) {
			return false
		}
	}
	if n.key < hi {
		return ascendRange(n.right, lo, hi, fn)
	}
	return true
}

// RangeSum returns the sum of values over entries with key in [lo, hi).
func (t *Tree) RangeSum(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return t.PrefixSumLess(hi) - t.PrefixSumLess(lo)
}

// SuffixSumFrom returns the sum of values over entries with key >= lo,
// i.e. RangeSum(lo, +inf).
func (t *Tree) SuffixSumFrom(lo float64) float64 { return t.Total() - t.PrefixSumLess(lo) }
