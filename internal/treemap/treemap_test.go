package treemap

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.Total() != 0 {
		t.Fatalf("Total = %v, want 0", tr.Total())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree reported a hit")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported a hit")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported a hit")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree reported success")
	}
	if got := tr.PrefixSum(10); got != 0 {
		t.Fatalf("PrefixSum = %v, want 0", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	tr.Put(5, 50)
	tr.Put(3, 30)
	tr.Put(8, 80)
	if v, ok := tr.Get(3); !ok || v != 30 {
		t.Fatalf("Get(3) = %v,%v", v, ok)
	}
	tr.Put(3, 31) // replace
	if v, _ := tr.Get(3); v != 31 {
		t.Fatalf("Get(3) after replace = %v, want 31", v)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Total() != 50+31+80 {
		t.Fatalf("Total = %v", tr.Total())
	}
}

func TestAddMergesAndInserts(t *testing.T) {
	tr := New()
	tr.Add(7, 1)
	tr.Add(7, 2)
	if v, _ := tr.Get(7); v != 3 {
		t.Fatalf("Get(7) = %v, want 3", v)
	}
	tr.Add(7, -3)
	if v, ok := tr.Get(7); !ok || v != 0 {
		t.Fatalf("zero-valued entry should remain present: %v,%v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestSingleNode(t *testing.T) {
	tr := New()
	tr.Put(42, 7)
	if mn, _ := tr.Min(); mn != 42 {
		t.Fatalf("Min = %v", mn)
	}
	if mx, _ := tr.Max(); mx != 42 {
		t.Fatalf("Max = %v", mx)
	}
	if got := tr.PrefixSum(42); got != 7 {
		t.Fatalf("PrefixSum(42) = %v", got)
	}
	if got := tr.PrefixSumLess(42); got != 0 {
		t.Fatalf("PrefixSumLess(42) = %v", got)
	}
	if !tr.Delete(42) {
		t.Fatal("Delete failed")
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatal("tree not empty after deleting only node")
	}
}

func TestPrefixSumBoundaries(t *testing.T) {
	tr := New()
	for _, k := range []float64{10, 20, 30, 40, 50} {
		tr.Put(k, k)
	}
	cases := []struct {
		k         float64
		le, less  float64
		ge, great float64
	}{
		{5, 0, 0, 150, 150},
		{10, 10, 0, 150, 140},
		{25, 30, 30, 120, 120},
		{30, 60, 30, 120, 90},
		{50, 150, 100, 50, 0},
		{55, 150, 150, 0, 0},
	}
	for _, c := range cases {
		if got := tr.PrefixSum(c.k); got != c.le {
			t.Errorf("PrefixSum(%v) = %v, want %v", c.k, got, c.le)
		}
		if got := tr.PrefixSumLess(c.k); got != c.less {
			t.Errorf("PrefixSumLess(%v) = %v, want %v", c.k, got, c.less)
		}
		if got := tr.SuffixSum(c.k); got != c.ge {
			t.Errorf("SuffixSum(%v) = %v, want %v", c.k, got, c.ge)
		}
		if got := tr.SuffixSumGreater(c.k); got != c.great {
			t.Errorf("SuffixSumGreater(%v) = %v, want %v", c.k, got, c.great)
		}
	}
}

func TestCountQueries(t *testing.T) {
	tr := New()
	for _, k := range []float64{1, 2, 3, 4, 5} {
		tr.Put(k, 100)
	}
	if got := tr.CountLE(3); got != 3 {
		t.Fatalf("CountLE(3) = %d", got)
	}
	if got := tr.CountLess(3); got != 2 {
		t.Fatalf("CountLess(3) = %d", got)
	}
	if got := tr.CountGreater(3); got != 2 {
		t.Fatalf("CountGreater(3) = %d", got)
	}
	if got := tr.CountLE(0); got != 0 {
		t.Fatalf("CountLE(0) = %d", got)
	}
	if got := tr.CountLE(9); got != 5 {
		t.Fatalf("CountLE(9) = %d", got)
	}
}

func TestAscendDescendOrder(t *testing.T) {
	tr := New()
	keys := []float64{9, 1, 5, 3, 7, 2, 8, 4, 6}
	for _, k := range keys {
		tr.Put(k, k*10)
	}
	var got []float64
	tr.Ascend(func(k, v float64) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at %v", k)
		}
		got = append(got, k)
		return true
	})
	if !sort.Float64sAreSorted(got) || len(got) != len(keys) {
		t.Fatalf("Ascend out of order: %v", got)
	}
	var down []float64
	tr.Descend(func(k, _ float64) bool {
		down = append(down, k)
		return true
	})
	for i := range down {
		if down[i] != got[len(got)-1-i] {
			t.Fatalf("Descend mismatch: %v", down)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for k := 1.0; k <= 10; k++ {
		tr.Put(k, 1)
	}
	var n int
	tr.Ascend(func(k, _ float64) bool {
		n++
		return k < 3
	})
	if n != 3 {
		t.Fatalf("visited %d entries, want 3", n)
	}
}

func TestFloorCeiling(t *testing.T) {
	tr := New()
	for _, k := range []float64{10, 20, 30} {
		tr.Put(k, 1)
	}
	if f, ok := tr.Floor(25); !ok || f != 20 {
		t.Fatalf("Floor(25) = %v,%v", f, ok)
	}
	if f, ok := tr.Floor(20); !ok || f != 20 {
		t.Fatalf("Floor(20) = %v,%v", f, ok)
	}
	if _, ok := tr.Floor(5); ok {
		t.Fatal("Floor(5) should be absent")
	}
	if c, ok := tr.Ceiling(15); !ok || c != 20 {
		t.Fatalf("Ceiling(15) = %v,%v", c, ok)
	}
	if c, ok := tr.Ceiling(30); !ok || c != 30 {
		t.Fatalf("Ceiling(30) = %v,%v", c, ok)
	}
	if _, ok := tr.Ceiling(31); ok {
		t.Fatal("Ceiling(31) should be absent")
	}
}

func TestDeleteAllAscending(t *testing.T) {
	tr := New()
	const n = 200
	for i := 0; i < n; i++ {
		tr.Put(float64(i), float64(i))
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(float64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestDeleteAllDescending(t *testing.T) {
	tr := New()
	const n = 200
	for i := 0; i < n; i++ {
		tr.Put(float64(i), float64(i))
	}
	for i := n - 1; i >= 0; i-- {
		if !tr.Delete(float64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteAbsentKey(t *testing.T) {
	tr := New()
	tr.Put(1, 1)
	tr.Put(2, 2)
	if tr.Delete(3) {
		t.Fatal("Delete(3) reported success for absent key")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len changed: %d", tr.Len())
	}
}

func TestNegativeAndFractionalKeys(t *testing.T) {
	tr := New()
	keys := []float64{-5.5, -1.25, 0, 2.75, 100.5}
	for _, k := range keys {
		tr.Put(k, 1)
	}
	if got := tr.CountLE(0); got != 3 {
		t.Fatalf("CountLE(0) = %d, want 3", got)
	}
	if got := tr.PrefixSum(-1.25); got != 2 {
		t.Fatalf("PrefixSum(-1.25) = %v, want 2", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// model is a reference implementation backed by a plain map.
type model map[float64]float64

func (m model) prefixSum(k float64) float64 {
	var s float64
	for key, v := range m {
		if key <= k {
			s += v
		}
	}
	return s
}

func (m model) total() float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

func TestRandomOpsAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		m := model{}
		for op := 0; op < 3000; op++ {
			k := float64(rng.Intn(300))
			switch rng.Intn(4) {
			case 0:
				v := float64(rng.Intn(1000))
				tr.Put(k, v)
				m[k] = v
			case 1:
				dv := float64(rng.Intn(100) - 50)
				tr.Add(k, dv)
				m[k] += dv
			case 2:
				_, want := m[k]
				if got := tr.Delete(k); got != want {
					t.Fatalf("seed %d op %d: Delete(%v) = %v, want %v", seed, op, k, got, want)
				}
				delete(m, k)
			case 3:
				q := float64(rng.Intn(350) - 20)
				if got, want := tr.PrefixSum(q), m.prefixSum(q); got != want {
					t.Fatalf("seed %d op %d: PrefixSum(%v) = %v, want %v", seed, op, q, got, want)
				}
			}
			if tr.Len() != len(m) {
				t.Fatalf("seed %d op %d: Len = %d, want %d", seed, op, tr.Len(), len(m))
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := tr.Total(), m.total(); got != want {
			t.Fatalf("seed %d: Total = %v, want %v", seed, got, want)
		}
	}
}

func TestQuickPrefixSumMatchesSortedScan(t *testing.T) {
	f := func(keys []int16, queries []int16) bool {
		tr := New()
		m := model{}
		for i, k := range keys {
			kf := float64(k)
			v := float64(i%17) - 8
			tr.Add(kf, v)
			m[kf] += v
		}
		if tr.Len() != len(m) {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		for _, q := range queries {
			qf := float64(q)
			if tr.PrefixSum(qf) != m.prefixSum(qf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesRank(t *testing.T) {
	f := func(keys []int8, q int8) bool {
		tr := New()
		uniq := map[float64]bool{}
		for _, k := range keys {
			tr.Put(float64(k), 1)
			uniq[float64(k)] = true
		}
		var want int
		for k := range uniq {
			if k <= float64(q) {
				want++
			}
		}
		return tr.CountLE(float64(q)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceHeightLogarithmic(t *testing.T) {
	tr := New()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Put(float64(i), 1) // adversarial sorted insertion order
	}
	h := height(tr.root)
	max := 2 * int(math.Ceil(math.Log2(n+1)))
	if h > max {
		t.Fatalf("height %d exceeds 2*log2(n) = %d", h, max)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func TestKeysSorted(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		tr.Put(float64(rng.Intn(10000)), 1)
	}
	ks := tr.Keys()
	if !sort.Float64sAreSorted(ks) {
		t.Fatal("Keys not sorted")
	}
	if len(ks) != tr.Len() {
		t.Fatalf("Keys len %d != Len %d", len(ks), tr.Len())
	}
}
