package treemap

import "testing"

func rangeTree() *Tree {
	tr := New()
	for _, k := range []float64{10, 20, 30, 40, 50} {
		tr.Put(k, k)
	}
	return tr
}

func TestHigherLower(t *testing.T) {
	tr := rangeTree()
	if h, ok := tr.Higher(20); !ok || h != 30 {
		t.Fatalf("Higher(20) = %v,%v", h, ok)
	}
	if h, ok := tr.Higher(25); !ok || h != 30 {
		t.Fatalf("Higher(25) = %v,%v", h, ok)
	}
	if _, ok := tr.Higher(50); ok {
		t.Fatal("Higher(50) should be absent")
	}
	if l, ok := tr.Lower(30); !ok || l != 20 {
		t.Fatalf("Lower(30) = %v,%v", l, ok)
	}
	if _, ok := tr.Lower(10); ok {
		t.Fatal("Lower(10) should be absent")
	}
}

func TestFirstPrefixGreater(t *testing.T) {
	tr := rangeTree() // prefix sums: 10,30,60,100,150
	cases := []struct {
		th   float64
		want float64
		ok   bool
	}{
		{0, 10, true},
		{9, 10, true},
		{10, 20, true},
		{30, 30, true},
		{59, 30, true},
		{60, 40, true},
		{149, 50, true},
		{150, 0, false},
	}
	for _, c := range cases {
		got, ok := tr.FirstPrefixGreater(c.th)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("FirstPrefixGreater(%v) = %v,%v want %v,%v", c.th, got, ok, c.want, c.ok)
		}
	}
	if _, ok := New().FirstPrefixGreater(0); ok {
		t.Fatal("FirstPrefixGreater on empty tree should be absent")
	}
}

func TestAscendRange(t *testing.T) {
	tr := rangeTree()
	var got []float64
	tr.AscendRange(20, 50, func(k, _ float64) bool {
		got = append(got, k)
		return true
	})
	want := []float64{20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("AscendRange = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange = %v, want %v", got, want)
		}
	}
	var n int
	tr.AscendRange(0, 100, func(k, _ float64) bool {
		n++
		return k < 30
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRangeSum(t *testing.T) {
	tr := rangeTree()
	if got := tr.RangeSum(20, 50); got != 90 {
		t.Fatalf("RangeSum(20,50) = %v", got)
	}
	if got := tr.RangeSum(50, 20); got != 0 {
		t.Fatalf("inverted RangeSum = %v", got)
	}
	if got := tr.RangeSum(15, 15); got != 0 {
		t.Fatalf("empty RangeSum = %v", got)
	}
	if got := tr.SuffixSumFrom(30); got != 120 {
		t.Fatalf("SuffixSumFrom(30) = %v", got)
	}
}
