// Command datagen emits the synthetic workloads as CSV, so traces can be
// inspected, archived, or replayed by external tools.
//
// Usage:
//
//	datagen -workload orderbook|rab|tpch [flags] > trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"rpai/internal/stream"
	"rpai/internal/tpch"
)

func main() {
	var (
		workload = flag.String("workload", "orderbook", "orderbook, rab, or tpch")
		events   = flag.Int("events", 10000, "number of events")
		seed     = flag.Int64("seed", 1, "generator seed")
		del      = flag.Float64("delete-ratio", 0.05, "fraction of deletion events")
		both     = flag.Bool("both-sides", false, "orderbook: emit asks as well as bids")
		sf       = flag.Float64("sf", 0.1, "tpch: scale factor")
		skewed   = flag.Bool("skewed", false, "tpch: Zipf-skewed partkeys")
	)
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	switch *workload {
	case "orderbook":
		cfg := stream.DefaultOrderBook(*events)
		cfg.Seed = *seed
		cfg.DeleteRatio = *del
		cfg.BothSides = *both
		must(w.Write([]string{"op", "side", "time", "id", "broker_id", "volume", "price"}))
		for _, e := range stream.GenerateOrderBook(cfg) {
			side := "bids"
			if e.Side == stream.Asks {
				side = "asks"
			}
			must(w.Write([]string{
				op(int(e.Op)), side,
				strconv.FormatInt(e.Rec.Time, 10),
				strconv.FormatInt(e.Rec.ID, 10),
				strconv.Itoa(int(e.Rec.BrokerID)),
				fmtF(e.Rec.Volume), fmtF(e.Rec.Price),
			}))
		}
	case "rab":
		cfg := stream.DefaultRAB(*events)
		cfg.Seed = *seed
		cfg.DeleteRatio = *del
		must(w.Write([]string{"op", "a", "b"}))
		for _, e := range stream.GenerateRAB(cfg) {
			must(w.Write([]string{op(int(e.Op)), fmtF(e.Rec.A), fmtF(e.Rec.B)}))
		}
	case "tpch":
		cfg := tpch.DefaultConfig(*sf, *skewed)
		cfg.Seed = *seed
		cfg.DeleteRatio = *del
		d := tpch.Generate(cfg)
		must(w.Write([]string{"op", "orderkey", "partkey", "quantity", "extendedprice"}))
		for _, e := range d.Events {
			must(w.Write([]string{
				op(int(e.Op)),
				strconv.Itoa(int(e.Rec.OrderKey)),
				strconv.Itoa(int(e.Rec.PartKey)),
				fmtF(e.Rec.Quantity), fmtF(e.Rec.ExtendedPrice),
			}))
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown workload %q\n", *workload)
		flag.Usage()
		os.Exit(2)
	}
}

func op(x int) string {
	if x > 0 {
		return "insert"
	}
	return "delete"
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
