// Command rpaistress runs a time-budgeted randomized differential soak: for
// every finance query it replays freshly seeded delete-heavy traces through
// the RPAI and DBToaster-style executors (plus naive on small traces) and
// stops at the first divergence. Intended for long unattended runs (CI
// nightlies) beyond what the unit-test soak covers.
//
// Usage:
//
//	rpaistress -duration 5m [-events 2000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"rpai/internal/queries"
	"rpai/internal/stream"
)

func main() {
	var (
		duration  = flag.Duration("duration", time.Minute, "total time budget")
		events    = flag.Int("events", 2000, "events per trace (naive runs at events/10)")
		seed      = flag.Int64("seed", 1, "starting seed; each round increments it")
		withNaive = flag.Bool("naive", true, "also check against naive re-evaluation on short traces")
	)
	flag.Parse()

	deadline := time.Now().Add(*duration)
	round := 0
	for time.Now().Before(deadline) {
		round++
		s := *seed + int64(round)
		for _, q := range queries.FinanceQueries() {
			cfg := stream.DefaultOrderBook(*events)
			cfg.Seed = s
			cfg.DeleteRatio = 0.3
			cfg.PriceLevels = 32 + int(s%64)
			cfg.MaxVolume = 10 + int(s%50)
			cfg.BothSides = q.BothSides
			if err := checkPair(q.Name, cfg); err != nil {
				fail(round, err)
			}
			if *withNaive {
				small := cfg
				small.Events = *events / 10
				if err := checkNaive(q.Name, small); err != nil {
					fail(round, err)
				}
			}
		}
		fmt.Printf("round %d ok (seed %d)\n", round, s)
	}
	fmt.Printf("stress passed: %d rounds within %s\n", round, *duration)
}

// checkPair replays cfg through the RPAI and Toaster strategies.
func checkPair(query string, cfg stream.OrderBookConfig) error {
	rp := queries.NewBids(query, queries.RPAI)
	to := queries.NewBids(query, queries.Toaster)
	for i, e := range stream.GenerateOrderBook(cfg) {
		rp.Apply(e)
		to.Apply(e)
		if !close(rp.Result(), to.Result()) {
			return fmt.Errorf("%s seed %d event %d: rpai %v vs toaster %v",
				query, cfg.Seed, i, rp.Result(), to.Result())
		}
	}
	return nil
}

// checkNaive replays a short trace with the naive oracle included.
func checkNaive(query string, cfg stream.OrderBookConfig) error {
	rp := queries.NewBids(query, queries.RPAI)
	na := queries.NewBids(query, queries.Naive)
	for i, e := range stream.GenerateOrderBook(cfg) {
		rp.Apply(e)
		na.Apply(e)
		if !close(rp.Result(), na.Result()) {
			return fmt.Errorf("%s seed %d event %d: rpai %v vs naive %v",
				query, cfg.Seed, i, rp.Result(), na.Result())
		}
	}
	return nil
}

func close(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func fail(round int, err error) {
	fmt.Fprintf(os.Stderr, "rpaistress: DIVERGENCE in round %d: %v\n", round, err)
	os.Exit(1)
}
