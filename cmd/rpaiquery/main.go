// Command rpaiquery incrementally evaluates a nested-aggregate SQL query
// over a CSV update stream, using the engine's planner: the aggregate-index
// strategy (PAI/RPAI) where the section 4.3 pattern applies, the general
// algorithm otherwise.
//
// The trace is CSV with a header row; an optional "op" column marks each row
// insert or delete (default insert), every other column is numeric. This is
// the format cmd/datagen emits.
//
// Usage:
//
//	datagen -workload orderbook -events 10000 > trace.csv
//	rpaiquery -trace trace.csv -every 1000 \
//	  -query "SELECT Sum(b.price * b.volume) FROM bids b WHERE 0.75 * (SELECT Sum(b1.volume) FROM bids b1) < (SELECT Sum(b2.volume) FROM bids b2 WHERE b2.price <= b.price)"
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rpai/internal/engine"
	"rpai/internal/query"
	"rpai/internal/sqlparse"
)

func main() {
	var (
		queryText = flag.String("query", "", "SQL query in the supported fragment")
		queryFile = flag.String("query-file", "", "read the query from a file instead")
		traceFile = flag.String("trace", "-", "CSV trace file ('-' for stdin)")
		every     = flag.Int("every", 0, "print the result every N events (0: only at the end)")
		verify    = flag.Bool("verify", false, "cross-check every printed result against naive re-evaluation (slow)")
		side      = flag.String("side", "", "if the trace has a 'side' column, keep only this side (e.g. bids)")
	)
	flag.Parse()

	sql := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if strings.TrimSpace(sql) == "" {
		fmt.Fprintln(os.Stderr, "rpaiquery: no query given (use -query or -query-file)")
		flag.Usage()
		os.Exit(2)
	}

	q, err := sqlparse.Parse(sql)
	if err != nil {
		fatal(err)
	}
	ex, err := engine.New(q)
	if err != nil {
		fatal(err)
	}
	var oracle *engine.NaiveExec
	if *verify {
		oracle = engine.NewNaive(q)
	}
	fmt.Printf("query:    %s\nstrategy: %s\n\n", q, ex.Strategy())

	var in io.Reader = os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	r := csv.NewReader(in)
	header, err := r.Read()
	if err != nil {
		fatal(fmt.Errorf("reading CSV header: %w", err))
	}
	opCol, sideCol := -1, -1
	for i, h := range header {
		switch strings.ToLower(h) {
		case "op":
			opCol = i
		case "side":
			sideCol = i
		}
	}

	n := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if sideCol >= 0 && *side != "" && rec[sideCol] != *side {
			continue
		}
		x := 1.0
		tu := query.Tuple{}
		for i, field := range rec {
			switch i {
			case opCol:
				if strings.EqualFold(field, "delete") {
					x = -1
				}
			case sideCol:
				// consumed above
			default:
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					fatal(fmt.Errorf("row %d, column %s: %w", n+1, header[i], err))
				}
				tu[header[i]] = v
			}
		}
		ev := engine.Event{X: x, Tuple: tu}
		ex.Apply(ev)
		if oracle != nil {
			oracle.Apply(ev)
		}
		n++
		if *every > 0 && n%*every == 0 {
			fmt.Printf("after %8d events: %g\n", n, ex.Result())
			if oracle != nil {
				if got, want := ex.Result(), oracle.Result(); got != want {
					fatal(fmt.Errorf("verification failed after %d events: incremental %g vs naive %g", n, got, want))
				}
			}
		}
	}
	if ge, ok := ex.(engine.GroupedExecutor); ok && len(q.GroupBy) > 0 {
		fmt.Printf("final (%d events), %d groups:\n", n, len(ge.ResultGrouped()))
		for _, g := range ge.ResultGrouped() {
			fmt.Printf("  %v -> %g\n", g.Key, g.Value)
		}
		return
	}
	fmt.Printf("final (%d events): %g\n", n, ex.Result())
	if oracle != nil {
		if got, want := ex.Result(), oracle.Result(); got != want {
			fatal(fmt.Errorf("verification failed at the end: incremental %g vs naive %g", got, want))
		}
		fmt.Println("verified against naive re-evaluation")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpaiquery:", err)
	os.Exit(1)
}
