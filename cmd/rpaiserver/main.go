// Command rpaiserver is the network daemon of the serving layer: it maintains
// a nested-aggregate query incrementally per partition (the sharded service
// of internal/serve) and speaks the wire protocol of internal/wire over TCP —
// batched applies with exactly-once sessions, drain barriers, scalar and
// grouped reads, stats, and checkpoint triggers.
//
// With -data the service is durable: applied events are logged to per-shard
// WALs, checkpoints rotate generations, and a restart recovers from the
// directory before accepting connections.
//
// With -replica the daemon is a read replica instead: it boots from the
// primary's checkpoint directory, tails the primary's per-shard WALs applying
// group-committed batches as they land, and serves reads and subscriptions
// while shedding every write with CodeReadOnly. The directory must be shared
// with (or mirrored from) the primary; -data is ignored in replica mode.
//
// Usage:
//
//	rpaiserver -addr :7411 -partition sym -data /var/lib/rpai \
//	  -query "SELECT Sum(b.price * b.volume) FROM bids b WHERE 0.75 * (SELECT Sum(b1.volume) FROM bids b1) < (SELECT Sum(b2.volume) FROM bids b2 WHERE b2.price <= b.price)"
//
//	rpaiserver -addr :7412 -partition sym -replica /var/lib/rpai -query "..."
//
// With -catalog (or one or more -register flags) the daemon hosts a
// multi-query catalog instead of a single query: every -register SQL is
// registered at boot, clients register and unregister queries at runtime over
// protocol version 4, one shared ingest stream fans out to every registered
// query behind a single WAL append per batch, and EXPLAIN reports each
// query's strategy and index sharing. With -data the catalog is durable: the
// registrations persist in a manifest and a restart recovers every query.
//
//	rpaiserver -addr :7413 -partition sym -catalog -data /var/lib/rpai \
//	  -register "SELECT ..." -register "SELECT ..."
//
// Clients connect with internal/wire/client, or any implementation of the
// framing in DESIGN.md section 5d.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"rpai/internal/catalog"
	"rpai/internal/checkpoint"
	"rpai/internal/engine"
	"rpai/internal/serve"
	"rpai/internal/sqlparse"
	"rpai/internal/wire"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7411", "TCP listen address")
		queryText    = flag.String("query", "", "SQL query in the supported fragment")
		queryFile    = flag.String("query-file", "", "read the query from a file instead")
		partition    = flag.String("partition", "", "comma-separated partition key columns (required)")
		shards       = flag.Int("shards", 0, "shard worker count (0: serve default)")
		queueLen     = flag.Int("queue", 0, "per-shard queue length (0: serve default)")
		batch        = flag.Int("batch", 0, "per-shard apply batch size (0: serve default)")
		dataDir      = flag.String("data", "", "checkpoint/WAL directory; enables durability and boot-time recovery")
		replicaDir   = flag.String("replica", "", "serve as a read replica tailing this primary data directory (sheds writes)")
		replicaPoll  = flag.Duration("replica-poll", 0, "replica WAL tail polling interval (0: serve default)")
		compactEvery = flag.Int("compact-every", 0, "auto-compact a shard's WAL after this many events (0: off)")
		maxInFlight  = flag.Int("max-inflight", 0, "admission limit for in-flight work requests (0: wire default)")
		perConn      = flag.Int("per-conn", 0, "pipelined requests buffered per connection (0: wire default)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "per-frame read deadline (0: wire default)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty: off)")
		catalogMode  = flag.Bool("catalog", false, "host a multi-query catalog (runtime registration over protocol v4)")
	)
	var registers multiFlag
	flag.Var(&registers, "register", "register this SQL query at boot (repeatable; implies -catalog)")
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			// The default mux already carries the /debug/pprof handlers via
			// the side-effect import. Failure to bind is non-fatal: profiling
			// is diagnostics, not service.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rpaiserver: pprof:", err)
			}
		}()
	}

	isCatalog := *catalogMode || len(registers) > 0
	sql := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if isCatalog && strings.TrimSpace(sql) != "" {
		fmt.Fprintln(os.Stderr, "rpaiserver: -catalog hosts many queries; use -register instead of -query")
		os.Exit(2)
	}
	if !isCatalog && strings.TrimSpace(sql) == "" {
		fmt.Fprintln(os.Stderr, "rpaiserver: no query given (use -query or -query-file, or -catalog/-register)")
		flag.Usage()
		os.Exit(2)
	}
	if strings.TrimSpace(*partition) == "" {
		fmt.Fprintln(os.Stderr, "rpaiserver: -partition is required (e.g. -partition sym)")
		flag.Usage()
		os.Exit(2)
	}
	var partitionBy []string
	for _, c := range strings.Split(*partition, ",") {
		if c = strings.TrimSpace(c); c != "" {
			partitionBy = append(partitionBy, c)
		}
	}

	if isCatalog {
		if *replicaDir != "" {
			fmt.Fprintln(os.Stderr, "rpaiserver: -catalog and -replica are mutually exclusive")
			os.Exit(2)
		}
		runCatalog(*addr, partitionBy, registers, catalog.Options{
			PartitionBy: partitionBy,
			Shards:      *shards,
			QueueLen:    *queueLen,
			BatchSize:   *batch,
			Dir:         *dataDir,
		}, wire.ServerConfig{
			MaxInFlight:  *maxInFlight,
			PerConnQueue: *perConn,
			IdleTimeout:  *idleTimeout,
			Query:        "catalog",
		})
		return
	}

	q, err := sqlparse.Parse(sql)
	if err != nil {
		fatal(err)
	}
	if *replicaDir != "" && *dataDir != "" {
		fmt.Fprintln(os.Stderr, "rpaiserver: -replica and -data are mutually exclusive (a replica keeps no WALs of its own)")
		os.Exit(2)
	}
	opt := serve.Options{
		Shards:       *shards,
		QueueLen:     *queueLen,
		BatchSize:    *batch,
		Dir:          *dataDir,
		CompactEvery: *compactEvery,
	}

	// Replica mode: boot from the primary's checkpoint directory and keep
	// tailing its WALs; the wire server sheds writes. Otherwise, with a data
	// directory holding a manifest, resume from it; else start fresh (logging
	// into the directory if one was given).
	var svc *serve.Service[engine.Event]
	var replica *serve.Replica[engine.Event]
	if *replicaDir != "" {
		replica, err = serve.ReplicaForQuery(*replicaDir, q, partitionBy, opt, *replicaPoll)
		if err != nil {
			fatal(fmt.Errorf("replicating %s: %w", *replicaDir, err))
		}
		svc = replica.Service()
		fmt.Printf("rpaiserver: read replica tailing %s (generation %d)\n", *replicaDir, replica.Generation())
	}
	if svc == nil && *dataDir != "" {
		if _, merr := checkpoint.ReadManifest(*dataDir); merr == nil {
			svc, err = serve.RecoverForQuery(*dataDir, q, partitionBy, opt)
			if err != nil {
				fatal(fmt.Errorf("recovering from %s: %w", *dataDir, err))
			}
			fmt.Printf("rpaiserver: recovered state from %s\n", *dataDir)
		}
	}
	if svc == nil {
		if svc, err = serve.ForQuery(q, partitionBy, opt); err != nil {
			fatal(err)
		}
	}

	srv := wire.NewServer(svc, wire.ServerConfig{
		MaxInFlight:  *maxInFlight,
		PerConnQueue: *perConn,
		IdleTimeout:  *idleTimeout,
		DataDir:      *dataDir,
		Query:        q.String(),
		ReadOnly:     replica != nil,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rpaiserver: serving %s\n  partition by %v, %d shards, listening on %s\n",
		q, partitionBy, svc.Shards(), ln.Addr())

	// Graceful shutdown: stop the front door first (in-flight replies still
	// flush), then drain the shards and close the service to flush the WALs.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Printf("rpaiserver: %v, shutting down\n", sig)
		srv.Close()
		if err := <-done; err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	if replica != nil {
		// Replica shutdown: stop the tailer; it closes the service (no WALs
		// to flush). A sticky tail error is worth surfacing on the way out.
		if err := replica.Close(); err != nil {
			fatal(err)
		}
	} else {
		if err := svc.Drain(); err != nil {
			fatal(err)
		}
		if err := svc.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Println("rpaiserver: clean shutdown")
}

// runCatalog boots the multi-query catalog daemon: recover the catalog from
// its data directory when one holds a manifest, register the boot queries,
// and serve protocol v4 until a signal, then drain and close.
func runCatalog(addr string, partitionBy []string, registers []string, opt catalog.Options, cfg wire.ServerConfig) {
	var cat *catalog.Service
	var err error
	if opt.Dir != "" {
		if _, serr := os.Stat(filepath.Join(opt.Dir, "CATALOG")); serr == nil {
			if cat, err = catalog.Recover(opt); err != nil {
				fatal(fmt.Errorf("recovering catalog from %s: %w", opt.Dir, err))
			}
			fmt.Printf("rpaiserver: recovered catalog from %s (%d queries)\n", opt.Dir, cat.Len())
		}
	}
	if cat == nil {
		if cat, err = catalog.New(opt); err != nil {
			fatal(err)
		}
	}
	// Boot registrations are idempotent across restarts: a -register query
	// whose canonical form is already in the recovered manifest is kept, not
	// registered again as a duplicate.
	recovered := make(map[string]catalog.QueryID)
	for _, ex := range cat.List() {
		recovered[ex.Canonical] = ex.ID
	}
	for _, sql := range registers {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			fatal(fmt.Errorf("registering %q: %w", sql, err))
		}
		if id, ok := recovered[q.String()]; ok {
			fmt.Printf("rpaiserver: query %d already registered (recovered)\n", id)
			continue
		}
		id, ex, err := cat.Register(sql)
		if err != nil {
			fatal(fmt.Errorf("registering %q: %w", sql, err))
		}
		recovered[ex.Canonical] = id
		shared := ""
		if len(ex.SharedWith) > 0 {
			shared = fmt.Sprintf(", sharing indexes with %v", ex.SharedWith)
		}
		fmt.Printf("rpaiserver: query %d registered (%s/%s%s)\n", id, ex.Strategy, ex.IndexKind, shared)
	}

	srv := wire.NewCatalogServer(cat, cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rpaiserver: catalog serving %d queries\n  partition by %v, %d shards, listening on %s\n",
		cat.Len(), partitionBy, cat.Shards(), ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Printf("rpaiserver: %v, shutting down\n", sig)
		srv.Close()
		if err := <-done; err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	if err := cat.DrainAll(); err != nil {
		fatal(err)
	}
	if err := cat.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("rpaiserver: clean shutdown")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpaiserver:", err)
	os.Exit(1)
}
