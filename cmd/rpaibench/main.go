// Command rpaibench regenerates the paper's evaluation tables and figures
// (SIGMOD '22 sections 5.2.1-5.2.2) from the synthetic workloads.
//
// Usage:
//
//	rpaibench -exp table1|scaling|fig7|fig8|fig8d|fig9|cadence|latency|all [flags]
//	rpaibench -exp serve|recovery|wire|arena|batch|fanout|matrix|multi [-quick] [flags]  # BENCH_*.json reports
//	rpaibench -exp replay -trace book.csv [-query vwap]
//	rpaibench -compare old.json new.json [-threshold 0.15]   # regression gate
//
// -compare diffs two BENCH_*.json reports of the same experiment and exits 1
// when any metric regressed by more than -threshold (or a baseline
// measurement disappeared), 2 on malformed input — the CI regression gate.
//
// The default scales finish in minutes on a laptop; -full switches Figure 8
// to the paper's 100k-event sweep. Any experiment can be profiled with
// -cpuprofile/-memprofile.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rpai/internal/bench"
	"rpai/internal/stream"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, scaling, fig7, fig8, fig8d, fig9, cadence, latency, serve, replay, recovery, wire, arena, batch, fanout, multi, or all")
		events   = flag.Int("events", 10000, "finance trace length for fig7")
		sf       = flag.Float64("sf", 1, "TPC-H scale factor for fig7")
		seed     = flag.Int64("seed", 1, "workload seed")
		full     = flag.Bool("full", false, "run fig8 at paper scale (adds the 100k point)")
		quick    = flag.Bool("quick", false, "shrink every experiment for a fast smoke run")
		figNine  = flag.Int("fig9-events", 4000, "trace length for fig9")
		format   = flag.String("format", "text", "output format: text or csv")
		trace    = flag.String("trace", "", "replay: order-book CSV trace file (as emitted by datagen)")
		rQuery   = flag.String("query", "vwap", "replay: finance query to run over -trace")
		srvOut   = flag.String("serve-out", "BENCH_serve.json", "serve: JSON report path (empty to skip the file)")
		recOut   = flag.String("recovery-out", "BENCH_recovery.json", "recovery: JSON report path (empty to skip the file)")
		wireOut  = flag.String("wire-out", "BENCH_wire.json", "wire: JSON report path (empty to skip the file)")
		arenaOut = flag.String("arena-out", "BENCH_arena.json", "arena: JSON report path (empty to skip the file)")
		batchOut = flag.String("batch-out", "BENCH_batch.json", "batch: JSON report path (empty to skip the file)")
		fanOut   = flag.String("fanout-out", "BENCH_fanout.json", "fanout: JSON report path (empty to skip the file)")
		matOut   = flag.String("matrix-out", "BENCH_matrix.json", "matrix: JSON report path (empty to skip the file)")
		multiOut = flag.String("multi-out", "BENCH_multi.json", "multi: JSON report path (empty to skip the file)")
		compare  = flag.Bool("compare", false, "compare two BENCH_*.json reports: rpaibench -compare old.json new.json")
		thresh   = flag.Float64("threshold", 0.15, "compare: relative regression threshold (0.15 = 15%)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *compare {
		os.Exit(runCompare(flag.Args(), *thresh))
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
			}
		}()
	}
	csvOut := *format == "csv"
	if !csvOut && *format != "text" {
		fmt.Fprintf(os.Stderr, "rpaibench: unknown format %q\n", *format)
		os.Exit(2)
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("table1") && !csvOut {
		ran = true
		fmt.Print(bench.FormatTable1(bench.Table1()))
		fmt.Println()
	}
	if run("scaling") {
		ran = true
		cfg := bench.DefaultScaling()
		if *quick {
			cfg.SmallN, cfg.LargeN = 200, 800
		}
		cfg.Seed = *seed
		rows := bench.MeasureScaling(cfg)
		if csvOut {
			fmt.Print(bench.ScalingCSV(rows))
		} else {
			fmt.Print(bench.FormatScaling(rows))
			fmt.Println()
		}
	}
	if run("fig7") {
		ran = true
		cfg := bench.Fig7Config{FinanceEvents: *events, TPCHScale: *sf, Seed: *seed}
		if *quick {
			cfg.FinanceEvents, cfg.TPCHScale = 1000, 0.1
		}
		rows := bench.Fig7(cfg)
		if csvOut {
			fmt.Print(bench.Fig7CSV(rows))
		} else {
			fmt.Print(bench.FormatFig7(rows))
			fmt.Println()
		}
	}
	if run("fig8") {
		ran = true
		cfg := bench.DefaultFig8()
		if *full {
			cfg = bench.FullFig8()
		}
		if *quick {
			cfg.Sizes = []int{100, 1000}
		}
		cfg.Seed = *seed
		series := bench.Fig8(cfg)
		if csvOut {
			fmt.Print(bench.Fig8CSV(series))
		} else {
			fmt.Print(bench.FormatFig8(series))
		}
	}
	if run("fig8d") {
		ran = true
		cfg := bench.DefaultFig8d()
		if *quick {
			cfg.Scales = []float64{0.1, 0.5}
		}
		cfg.Seed = *seed
		points := bench.Fig8d(cfg)
		if csvOut {
			fmt.Print(bench.Fig8dCSV(points))
		} else {
			fmt.Print(bench.FormatFig8d(points))
			fmt.Println()
		}
	}
	if run("cadence") {
		ran = true
		cfg := bench.DefaultCadence()
		if *quick {
			cfg.Events = 2000
		}
		cfg.Seed = *seed
		points := bench.Cadence(cfg)
		if csvOut {
			fmt.Print(bench.CadenceCSV(cfg.Query, points))
		} else {
			fmt.Print(bench.FormatCadence(cfg.Query, points))
			fmt.Println()
		}
	}
	if run("latency") {
		ran = true
		cfg := bench.DefaultLatency()
		if *quick {
			cfg.Events, cfg.WarmUp = 2000, 200
		}
		cfg.Seed = *seed
		rows := bench.Latency(cfg)
		if csvOut {
			fmt.Print(bench.LatencyCSV(cfg.Query, rows))
		} else {
			fmt.Print(bench.FormatLatency(cfg.Query, rows))
			fmt.Println()
		}
	}
	if *exp == "replay" {
		ran = true
		if *trace == "" {
			fmt.Fprintln(os.Stderr, "rpaibench: -exp replay requires -trace")
			os.Exit(2)
		}
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		events, err := stream.ReadOrderBookCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Printf("replaying %d events from %s through %s\n", len(events), *trace, *rQuery)
		for _, sys := range []bench.System{bench.SysToaster, bench.SysRPAI} {
			elapsed, res := bench.NewFinanceRunner(*rQuery, sys, events).Run()
			fmt.Printf("  %-8s %12v   result %g\n", sys, elapsed.Round(time.Microsecond), res)
		}
	}
	if *exp == "serve" {
		ran = true
		cfg := bench.DefaultServe()
		if *quick {
			cfg.Events, cfg.Partitions, cfg.QueueLen = 20000, 1024, 2048
		}
		cfg.Seed = *seed
		rep, err := bench.Serve(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatServe(rep))
		if *srvOut != "" {
			data, err := bench.ServeJSON(rep)
			if err == nil {
				err = os.WriteFile(*srvOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *srvOut)
		}
	}
	if *exp == "recovery" {
		ran = true
		cfg := bench.DefaultRecovery()
		if *quick {
			cfg.Events, cfg.Partitions, cfg.QueueLen = 20000, 128, 2048
		}
		cfg.Seed = *seed
		rep, err := bench.Recovery(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatRecovery(rep))
		if *recOut != "" {
			data, err := bench.RecoveryJSON(rep)
			if err == nil {
				err = os.WriteFile(*recOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *recOut)
		}
	}
	if *exp == "wire" {
		ran = true
		cfg := bench.DefaultWire()
		if *quick {
			cfg.Events, cfg.Partitions = 20000, 128
		}
		cfg.Seed = *seed
		rep, err := bench.Wire(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatWire(rep))
		if *wireOut != "" {
			data, err := bench.WireJSON(rep)
			if err == nil {
				err = os.WriteFile(*wireOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *wireOut)
		}
	}
	if *exp == "batch" {
		ran = true
		cfg := bench.DefaultBatchNative()
		if *quick {
			cfg = bench.QuickBatchNative()
		}
		cfg.Seed = *seed
		rep, err := bench.BatchNative(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatBatchNative(rep))
		if *batchOut != "" {
			data, err := bench.BatchNativeJSON(rep)
			if err == nil {
				err = os.WriteFile(*batchOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *batchOut)
		}
	}
	if *exp == "fanout" {
		ran = true
		cfg := bench.DefaultFanout()
		if *quick {
			cfg = bench.QuickFanout()
		}
		cfg.Seed = *seed
		rep, err := bench.Fanout(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatFanout(rep))
		if *fanOut != "" {
			data, err := bench.FanoutJSON(rep)
			if err == nil {
				err = os.WriteFile(*fanOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *fanOut)
		}
	}
	if *exp == "matrix" {
		ran = true
		cfg := bench.DefaultMatrix()
		if *quick {
			cfg = bench.QuickMatrix()
		}
		cfg.Seed = *seed
		rep, err := bench.Matrix(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatMatrix(rep))
		if *matOut != "" {
			data, err := bench.MatrixJSON(rep)
			if err == nil {
				err = os.WriteFile(*matOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *matOut)
		}
	}
	if *exp == "multi" {
		ran = true
		cfg := bench.DefaultMulti()
		if *quick {
			cfg = bench.QuickMulti()
		}
		cfg.Seed = *seed
		rep, err := bench.Multi(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatMulti(rep))
		if *multiOut != "" {
			data, err := bench.MultiJSON(rep)
			if err == nil {
				err = os.WriteFile(*multiOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *multiOut)
		}
	}
	if *exp == "arena" {
		ran = true
		cfg := bench.DefaultArena()
		if *quick {
			cfg = bench.QuickArena()
		}
		cfg.Seed = *seed
		rep, err := bench.Arena(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpaibench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatArena(rep))
		if *arenaOut != "" {
			data, err := bench.ArenaJSON(rep)
			if err == nil {
				err = os.WriteFile(*arenaOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpaibench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *arenaOut)
		}
	}
	if run("fig9") {
		ran = true
		cfg := bench.DefaultFig9()
		cfg.Events = *figNine
		if *quick {
			cfg.Events, cfg.SampleEvery = 1000, 100
		}
		cfg.Seed = *seed
		curves := bench.Fig9(cfg)
		if csvOut {
			fmt.Print(bench.Fig9CSV(curves))
		} else {
			fmt.Print(bench.FormatFig9(curves))
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rpaibench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// runCompare is the regression-gate mode: diff two reports, print the table,
// exit 0 when clean, 1 on a regression (or vanished baseline measurement),
// 2 on usage or malformed input.
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "rpaibench: -compare needs exactly two report paths: old.json new.json")
		return 2
	}
	oldData, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpaibench:", err)
		return 2
	}
	newData, err := os.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpaibench:", err)
		return 2
	}
	rep, err := bench.Compare(oldData, newData, threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpaibench:", err)
		return 2
	}
	fmt.Print(bench.FormatCompare(rep))
	if err := rep.Gate(); err != nil {
		fmt.Fprintln(os.Stderr, "rpaibench:", err)
		return 1
	}
	return 0
}
