# Convenience targets; everything is plain `go` underneath.

.PHONY: test test-race bench experiments examples fuzz fuzz-smoke race recovery lint

test:
	go build ./... && go vet ./... && go test ./...

test-race:
	go test -race ./...

race:
	go test -race ./internal/...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/rpaibench -exp all

examples:
	go run ./examples/quickstart
	go run ./examples/vwap
	go run ./examples/tpch_q17
	go run ./examples/orderbook
	go run ./examples/queryengine
	go run ./examples/minmax
	go run ./examples/checkpoint

fuzz:
	go test -fuzz FuzzTreeOps -fuzztime 30s ./internal/rpai/
	go test -fuzz FuzzEngineDifferential -fuzztime 30s ./internal/engine/
	go test -fuzz FuzzSnapshotRoundTrip -fuzztime 30s ./internal/engine/
	go test -fuzz FuzzWALRecords -fuzztime 30s ./internal/checkpoint/
	go test -fuzz FuzzBTreeVsBinary -fuzztime 30s ./internal/rpaibtree/
	go test -fuzz FuzzParse -fuzztime 30s ./internal/sqlparse/

# The 10-second smoke CI runs on every push.
fuzz-smoke:
	go test -fuzz FuzzTreeOps -fuzztime 10s -run '^$$' ./internal/rpai/
	go test -fuzz FuzzEngineDifferential -fuzztime 10s -run '^$$' ./internal/engine/
	go test -fuzz FuzzSnapshotRoundTrip -fuzztime 10s -run '^$$' ./internal/engine/
	go test -fuzz FuzzWALRecords -fuzztime 10s -run '^$$' ./internal/checkpoint/

# The durability surface: crash-injection/recovery tests under -race, plus
# the recovery-vs-replay experiment at quick scale (CI's recovery job).
recovery:
	go test -race -run 'Crash|Snapshot|Recover|WAL|Torn|Manifest|Checkpoint|Generation' \
		./internal/checkpoint/ ./internal/engine/ ./internal/serve/
	go run ./cmd/rpaibench -exp recovery -quick -recovery-out ""
