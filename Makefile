# Convenience targets; everything is plain `go` underneath.

.PHONY: test test-race bench bench-core batch experiments examples fuzz fuzz-smoke race recovery wire fanout matrix matrix-smoke catalog family sharing bench-compare serve-demo lint

test:
	go build ./... && go vet ./... && go test ./...

test-race:
	go test -race ./...

race:
	go test -race ./internal/...

bench:
	go test -bench=. -benchmem ./...

# Core-tree micro-benchmarks, pointer vs arena side by side (satellite of the
# arena experiment; `rpaibench -exp arena` is the reportable version).
bench-core:
	go test -run '^$$' -bench 'BenchmarkTree(Put|Add|GetSum|Delete)' -benchmem \
		-benchtime 200ms -count 3 ./internal/rpai/

experiments:
	go run ./cmd/rpaibench -exp all

# Batch-native ingest: the ApplyBatch sweep across strategies and batch
# sizes, the equivalence fuzz target, and the alloc guards (CI's batch job).
batch:
	go test -race -run 'ApplyBatch|Batch' -fuzz FuzzBatchEquivalence -fuzztime 10s ./internal/engine/
	go test -race -run 'ApplyBatch|BatchSize|AllocGuard' ./internal/serve/
	go run ./cmd/rpaibench -exp batch -quick -batch-out ""

examples:
	go run ./examples/quickstart
	go run ./examples/vwap
	go run ./examples/tpch_q17
	go run ./examples/orderbook
	go run ./examples/queryengine
	go run ./examples/minmax
	go run ./examples/checkpoint
	go run ./examples/wiredemo

fuzz:
	go test -fuzz FuzzTreeOps -fuzztime 30s ./internal/rpai/
	go test -fuzz FuzzEngineDifferential -fuzztime 30s ./internal/engine/
	go test -fuzz FuzzBatchEquivalence -fuzztime 30s ./internal/engine/
	go test -fuzz FuzzSnapshotRoundTrip -fuzztime 30s ./internal/engine/
	go test -fuzz FuzzWALRecords -fuzztime 30s ./internal/checkpoint/
	go test -fuzz FuzzBTreeVsBinary -fuzztime 30s ./internal/rpaibtree/
	go test -fuzz FuzzParse -fuzztime 30s ./internal/sqlparse/
	go test -fuzz FuzzWireFrames -fuzztime 30s ./internal/wire/
	go test -fuzz FuzzSubscriptionDeltas -fuzztime 30s ./internal/serve/

# The 10-second smoke CI runs on every push.
fuzz-smoke:
	go test -fuzz FuzzTreeOps -fuzztime 10s -run '^$$' ./internal/rpai/
	go test -fuzz FuzzEngineDifferential -fuzztime 10s -run '^$$' ./internal/engine/
	go test -fuzz FuzzBatchEquivalence -fuzztime 10s -run '^$$' ./internal/engine/
	go test -fuzz FuzzSnapshotRoundTrip -fuzztime 10s -run '^$$' ./internal/engine/
	go test -fuzz FuzzWALRecords -fuzztime 10s -run '^$$' ./internal/checkpoint/
	go test -fuzz FuzzWireFrames -fuzztime 10s -run '^$$' ./internal/wire/

# The durability surface: crash-injection/recovery tests under -race, plus
# the recovery-vs-replay experiment at quick scale (CI's recovery job).
recovery:
	go test -race -run 'Crash|Snapshot|Recover|WAL|Torn|Manifest|Checkpoint|Generation' \
		./internal/checkpoint/ ./internal/engine/ ./internal/serve/
	go run ./cmd/rpaibench -exp recovery -quick -recovery-out ""

# The networked serving surface under -race, plus the wire experiment at
# quick scale (CI's wire job).
wire:
	go build ./cmd/rpaiserver
	go test -race ./internal/wire/...
	go run ./cmd/rpaibench -exp wire -quick -wire-out ""

# The read fan-out surface: subscription/replica/read-only tests under
# -race, the subscription and wire fuzz smokes, and the push-vs-pull
# experiment at quick scale (CI's fanout job).
fanout:
	go test -race -run 'Subscri|Delta|Replica|ReadOnly|Downgrade|Version|Tail|View' \
		./internal/serve/ ./internal/wire/... ./internal/checkpoint/
	go test -fuzz FuzzSubscriptionDeltas -fuzztime 10s -run '^$$' ./internal/serve/
	go test -fuzz FuzzWireFrames -fuzztime 10s -run '^$$' ./internal/wire/
	go run ./cmd/rpaibench -exp fanout -quick -fanout-out ""

# The multicore scaling matrix at full scale: serve / wire / fanout modes
# swept over GOMAXPROCS x shards x batch size x connections, written to
# BENCH_matrix.json with the host baseline in the header.
matrix:
	go run ./cmd/rpaibench -exp matrix

# CI's matrix job: parallel differential + stats-race tests under -race, the
# GOMAXPROCS=4 fuzz smokes, then a quick matrix run gated against the
# committed baseline at the default 15% threshold.
matrix-smoke:
	go test -race -run 'ParallelIngest|StatsRace|MaxProcs|Matrix|Compare' \
		./internal/serve/ ./internal/bench/
	GOMAXPROCS=4 go test -race -fuzz FuzzBatchEquivalence -fuzztime 10s -run '^$$' ./internal/engine/
	GOMAXPROCS=4 go test -race -fuzz FuzzSubscriptionDeltas -fuzztime 10s -run '^$$' ./internal/serve/
	go run ./cmd/rpaibench -exp matrix -quick -matrix-out /tmp/rpai-matrix-new.json
	go run ./cmd/rpaibench -compare BENCH_matrix_baseline.json /tmp/rpai-matrix-new.json

# CI's catalog job: the multi-query surface under -race (catalog lifecycle,
# sharing, crash/recover, wire v4 routing), the catalog differential fuzz
# smoke, then a quick multi run gated against the committed baseline.
catalog:
	go test -race ./internal/catalog/
	go test -race -run 'Catalog|Register|Explain|QueryList|SubscribeQ|VersionGate' \
		./internal/wire/...
	go test -fuzz FuzzCatalogDifferential -fuzztime 10s -run '^$$' ./internal/catalog/
	go run ./cmd/rpaibench -exp multi -quick -multi-out /tmp/rpai-multi-new.json
	go run ./cmd/rpaibench -compare BENCH_multi_baseline.json /tmp/rpai-multi-new.json

# CI's family job: predicate-generalized index sharing end to end — the
# engine family-key and fan bit-identity tests (both RPAI representations),
# serve fan lanes, catalog family lifecycle (churn race, v1-manifest
# recovery) under -race, the family-seeded catalog fuzz smoke, then a quick
# multi run (shared/family/distinct arms) gated against the committed
# baseline at the default 15% threshold.
family:
	go test -race -run 'Family|Fan|PredSig|V1Manifest' \
		./internal/engine/ ./internal/serve/ ./internal/catalog/
	go test -fuzz FuzzCatalogDifferential -fuzztime 10s -run '^$$' ./internal/catalog/
	go run ./cmd/rpaibench -exp multi -quick -multi-out /tmp/rpai-family-new.json
	go run ./cmd/rpaibench -compare BENCH_multi_baseline.json /tmp/rpai-family-new.json

# CI's sharing job: the state/probe split end to end — StateKey/SplitResidual
# and probe-lane bit-identity in the engine, aggregate and filtered variants
# on one state set, retroactive fork-join attach with crash/recover and
# rotation reuse, the v5 EXPLAIN cross-version codec, and the variant churn
# race, all under -race; the extended catalog differential fuzz smoke; then a
# quick multi run (all six arms) gated against the committed baseline at the
# default 15% threshold.
sharing:
	go test -race -run 'StateKey|SplitResidual|ResultProbe|Variant|ForkAttach|RotationFork|CrossVersion|ChurnRace' \
		./internal/engine/ ./internal/catalog/ ./internal/checkpoint/ ./internal/wire/...
	go test -fuzz FuzzCatalogDifferential -fuzztime 10s -run '^$$' ./internal/catalog/
	go run ./cmd/rpaibench -exp multi -quick -multi-out /tmp/rpai-sharing-new.json
	go run ./cmd/rpaibench -compare BENCH_multi_baseline.json /tmp/rpai-sharing-new.json

# Static analysis beyond `go vet`: formatting drift, staticcheck, and the
# vulnerability scan. CI installs the two tools in its lint job; locally they
# are skipped with a note when absent (this repo never installs tools for
# you).
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	go vet ./...
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping"; fi

# Compare two benchmark reports: make bench-compare OLD=a.json NEW=b.json
bench-compare:
	go run ./cmd/rpaibench -compare $(OLD) $(NEW)

# Boot a durable rpaiserver on :7411 with the VWAP decile query, partitioned
# by symbol, and run the in-process demo against a loopback server.
serve-demo:
	go run ./examples/wiredemo
	go run ./cmd/rpaiserver -addr 127.0.0.1:7411 -partition sym -data /tmp/rpai-serve-demo \
		-query "SELECT Sum(b.price * b.volume) FROM bids b WHERE 0.75 * (SELECT Sum(b1.volume) FROM bids b1) < (SELECT Sum(b2.volume) FROM bids b2 WHERE b2.price <= b.price)"
